"""The CDAS system facade (paper Figure 2).

Wires the three architecture components — job manager, crowdsourcing
engine, program executor — behind one object, so deploying an analytics
job looks like the paper describes: register the job type once, then
submit Definition-1 queries against it.

The primary surface is the handle-based service (DESIGN.md §7)::

    cdas = CDAS.with_default_jobs(market, seed=7)
    cdas.calibrate(gold_questions)
    service = cdas.service(max_in_flight=8)
    handle = service.submit("twitter-sentiment", query, tenant="acme",
                            tweets=tweets, gold_tweets=gold)
    while service.step():
        print(handle.progress())
    report = handle.result()

On an event loop, :meth:`CDAS.async_service` serves the same surface
with awaitable handles (``await handle.result()``, ``async for snapshot
in handle.updates()``); many async services multiplex on one loop via
:class:`~repro.engine.aio.ServiceMux` (DESIGN.md §8).

Each registered job binds a :class:`~repro.engine.jobs.JobSpec` (the
human/computer split and HIT template) to a *submitter* that enqueues the
job's batches on any :class:`~repro.engine.scheduler.BatchSink` — a raw
shared :class:`~repro.engine.scheduler.HITScheduler`, or the service
layer's admission-controlled intake.  The two paper applications ship as
default bindings; new job types register the same way (the extensibility
§2.2 advertises).

The historical blocking calls remain as thin wrappers over the service:
``submit`` runs a one-slot service to idle and returns the result;
``submit_many`` shares one service (one scheduler, one worker pool, one
merged arrival stream) across requests.  Both are bit-for-bit identical to
the pre-service engine (the ``run_batch`` golden pins the substrate, and
equal-priority admission degenerates to the scheduler's historical
round-robin).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import TYPE_CHECKING, Any

from repro.amt.backend import MarketBackend
from repro.amt.hit import Question
from repro.engine.aio import AsyncSchedulerService
from repro.engine.engine import CrowdsourcingEngine, EngineConfig
from repro.engine.jobs import JobManager, JobSpec, ProcessingPlan
from repro.engine.planner import JobProjector, Projection
from repro.engine.privacy import PrivacyManager
from repro.engine.query import Query
from repro.engine.scheduler import BatchSink, HITScheduler
from repro.engine.service import SchedulerService

if TYPE_CHECKING:
    from repro.gateway import GatewayApp

__all__ = ["JobRunner", "JobSubmitter", "CDAS", "runner_from_submitter"]

#: A runner executes a processing plan: (engine, plan, job inputs) → result.
JobRunner = Callable[[CrowdsourcingEngine, ProcessingPlan, dict[str, Any]], Any]

#: A submitter enqueues a plan's HITs on a *shared* batch sink (a scheduler
#: or the service layer's intake) and returns a finalizer that assembles
#: the job-level result once the batches have run.
JobSubmitter = Callable[
    [CrowdsourcingEngine, BatchSink, ProcessingPlan, dict[str, Any]],
    Callable[[], Any],
]


class CDAS:
    """Figure 2: job manager + crowdsourcing engine + program executor.

    Parameters
    ----------
    market:
        The crowdsourcing platform (simulated here; a live AMT client
        would satisfy the same interface).
    seed / engine_config / privacy:
        Forwarded to the embedded :class:`CrowdsourcingEngine`.
    """

    def __init__(
        self,
        market: MarketBackend,
        seed: int = 0,
        engine_config: EngineConfig | None = None,
        privacy: PrivacyManager | None = None,
    ) -> None:
        self.market = market
        self.engine = CrowdsourcingEngine(
            market, seed=seed, config=engine_config, privacy=privacy
        )
        self.job_manager = JobManager()
        self._runners: dict[str, JobRunner] = {}
        self._submitters: dict[str, JobSubmitter] = {}
        self._projectors: dict[str, JobProjector] = {}
        #: Jobs whose runner was passed explicitly (not derived from the
        #: submitter) — submit() must keep honouring it over the service.
        self._explicit_runners: set[str] = set()

    # -- job registration ----------------------------------------------------

    def register_job(
        self,
        spec: JobSpec,
        runner: JobRunner | None = None,
        submitter: JobSubmitter | None = None,
        projector: JobProjector | None = None,
    ) -> None:
        """Bind a job type to its execution logic.

        ``submitter`` lets the job run on the service and on
        :meth:`submit_many`'s shared scheduler; the blocking :meth:`submit`
        path is derived from it (:func:`runner_from_submitter`) so the two
        surfaces accept identical inputs.  Pass an explicit ``runner`` only
        for jobs that cannot express their work as scheduler batches —
        such jobs support :meth:`submit` but not the service.

        ``projector`` (optional) is the job's cost-projection half:
        ``(engine, plan, inputs) → Projection`` counting the job's items
        and HITs without touching the market.  Jobs with a projector gain
        the plan-first surface (``service.plan`` / ``submit(plan=…)`` /
        EXPLAIN); jobs without one still submit plan-lessly.
        """
        if runner is None:
            if submitter is None:
                raise ValueError(
                    f"job {spec.name!r} needs a runner, a submitter, or both"
                )
            runner = runner_from_submitter(submitter)
        else:
            self._explicit_runners.add(spec.name)
        self.job_manager.register(spec)
        self._runners[spec.name] = runner
        if submitter is not None:
            self._submitters[spec.name] = submitter
        if projector is not None:
            if submitter is None:
                raise ValueError(
                    f"job {spec.name!r} has a projector but no submitter; "
                    "plans can only gate service submissions"
                )
            self._projectors[spec.name] = projector

    @property
    def jobs(self) -> tuple[str, ...]:
        return self.job_manager.registered_jobs

    @classmethod
    def with_default_jobs(
        cls,
        market: MarketBackend,
        seed: int = 0,
        engine_config: EngineConfig | None = None,
        privacy: PrivacyManager | None = None,
    ) -> "CDAS":
        """A system with the paper's two applications pre-registered."""
        system = cls(
            market, seed=seed, engine_config=engine_config, privacy=privacy
        )
        from repro.it.app import build_it_spec
        from repro.tsa.app import build_tsa_spec

        system.register_job(
            build_tsa_spec(), submitter=_tsa_submitter, projector=_tsa_projector
        )
        system.register_job(
            build_it_spec(), submitter=_it_submitter, projector=_it_projector
        )
        return system

    # -- operations ------------------------------------------------------------

    def calibrate(
        self,
        gold_questions: Sequence[Question],
        workers_per_hit: int = 20,
        hits: int = 2,
    ) -> float:
        """Bootstrap the engine's worker-accuracy estimates (§3.3)."""
        return self.engine.calibrate(
            gold_questions, workers_per_hit=workers_per_hit, hits=hits
        )

    def service(
        self,
        max_in_flight: int = 4,
        track_trajectories: bool = True,
        allocation: str = "weighted",
        on_event: Callable[..., None] | None = None,
        backend: MarketBackend | None = None,
        journal: Any = None,
        journal_meta: dict[str, Any] | None = None,
        snapshot_every: int | None = None,
    ) -> SchedulerService:
        """A long-lived scheduler service over this system's engine.

        The service accepts submissions while running and hands back
        :class:`~repro.engine.service.QueryHandle`\\ s; see
        :class:`~repro.engine.service.SchedulerService`.  Every job
        registered with a submitter is available on it.

        ``backend`` swaps the market the service runs against — typically
        a :class:`~repro.amt.trace.TraceReplayBackend` replaying a
        recorded run, or a :class:`~repro.amt.slow.SlowBackend` rehearsal
        — on a *fresh* engine (same seed, config and privacy policy as
        this system's).  The fresh engine matters for replay: the
        replayed run must rebuild estimator state from the recorded
        submissions alone, exactly as the recording run built it.
        Calibration traffic for such a service goes through
        ``service.engine.calibrate`` (it is part of the recording).

        ``journal`` attaches a write-ahead journal (DESIGN.md §12) and
        returns a
        :class:`~repro.durability.service.DurableSchedulerService`
        instead: a path (``.jsonl`` file store, ``.sqlite`` store) or an
        open :class:`~repro.durability.journal.JournalStore`.  The
        journal must be fresh — resume an existing one with
        :meth:`recover`.  ``journal_meta`` stamps free-form JSON into the
        header (recovery tooling reads it to pick a workload factory);
        ``snapshot_every`` enables quiescent-point snapshot compaction.
        """
        engine = self.engine
        if backend is not None:
            engine = CrowdsourcingEngine(
                backend,
                seed=self.engine.seed,
                config=self.engine.config,
                privacy=self.engine.privacy,
            )
        service = SchedulerService(
            engine,
            self.job_manager.plan,
            self._submitters,
            max_in_flight=max_in_flight,
            track_trajectories=track_trajectories,
            allocation=allocation,
            on_event=on_event,
            projectors=self._projectors,
        )
        if journal is None:
            return service
        from repro.durability import DurableSchedulerService, open_store

        return DurableSchedulerService(
            service,
            open_store(journal),
            meta=journal_meta,
            snapshot_every=snapshot_every,
        )

    def recover(
        self,
        journal: Any,
        *,
        backend: MarketBackend | None = None,
        use_snapshot: bool = True,
    ) -> SchedulerService:
        """Resume the service a journal describes (DESIGN.md §12).

        This system must be built the same way as the one that wrote the
        journal (seed, config, calibration, job registrations) — recovery
        verifies its deterministic re-execution record-by-record and
        raises :class:`~repro.durability.RecoveryDivergence` on drift.
        See :func:`repro.durability.recover`.
        """
        from repro.durability import recover as _recover

        return _recover(
            journal, self, backend=backend, use_snapshot=use_snapshot
        )

    def async_service(
        self,
        max_in_flight: int = 4,
        track_trajectories: bool = True,
        allocation: str = "weighted",
        on_event: Callable[..., None] | None = None,
        name: str | None = None,
        backend: MarketBackend | None = None,
        journal: Any = None,
        journal_meta: dict[str, Any] | None = None,
        snapshot_every: int | None = None,
    ) -> AsyncSchedulerService:
        """An async-native service over this system's engine (DESIGN.md §8).

        Wraps :meth:`service` in an
        :class:`~repro.engine.aio.AsyncSchedulerService`: same submission
        surface, but handles are awaitable (``await handle.result()``,
        ``async for snapshot in handle.updates()``) and one driver task
        pumps the service cooperatively on the running event loop.
        Several async services — typically one per tenant group —
        multiplex on one loop through
        :class:`~repro.engine.aio.ServiceMux`.  ``backend`` swaps the
        market as for :meth:`service`; a replay backend with
        ``time_scale > 0`` serves its recorded arrival ETAs through
        ``next_arrival_eta()``, so the driver's sleeping is exercised by
        replay exactly as a slow/live market would.  ``journal`` attaches
        a write-ahead journal exactly as for :meth:`service`; the driver
        keeps the fsync barrier off its hot loop by flushing whenever it
        goes dormant or drains (DESIGN.md §12).
        """
        return AsyncSchedulerService(
            self.service(
                max_in_flight=max_in_flight,
                track_trajectories=track_trajectories,
                allocation=allocation,
                on_event=on_event,
                backend=backend,
                journal=journal,
                journal_meta=journal_meta,
                snapshot_every=snapshot_every,
            ),
            name=name,
        )

    def gateway(
        self,
        tokens: Mapping[str, str],
        *,
        name: str = "svc",
        presets: Mapping[str, Mapping[str, Any]] | None = None,
        routes: Mapping[str, str] | None = None,
        max_in_flight: int = 4,
        track_trajectories: bool = True,
        allocation: str = "weighted",
        journal: Any = None,
        journal_meta: dict[str, Any] | None = None,
        snapshot_every: int | None = None,
        resume: bool = False,
        heartbeat: float | None = None,
    ) -> "GatewayApp":
        """An HTTP/ASGI gateway over one service of this system (§13).

        Builds the async serving stack — one
        :class:`~repro.engine.aio.AsyncSchedulerService` named ``name``
        over :meth:`service` (journaled when ``journal`` is given) —
        and fronts it with a :class:`~repro.gateway.GatewayApp`:
        bearer-token tenant auth (``tokens`` maps token → tenant),
        named job-input ``presets`` reachable from request bodies, and
        the full ``/v1`` endpoint surface.  Serve it in-process (call
        the ASGI app directly) or on a socket via
        :class:`~repro.gateway.GatewayServer`.

        ``resume=True`` recovers the service from the (non-empty)
        ``journal`` instead of starting fresh: the recovered handles
        are adopted into the async layer, so every query id the crashed
        gateway acknowledged resolves again — same ids, no re-charge.

        Multi-service deployments (one service per tenant group) build
        their own :class:`~repro.engine.aio.ServiceMux` and construct
        :class:`~repro.gateway.GatewayApp` directly; this helper covers
        the common single-service shape the CLI serves.
        """
        from repro.gateway import GatewayApp, TokenAuth

        if resume:
            if journal is None:
                raise ValueError("resume=True needs a journal to recover from")
            inner = self.recover(journal)
        else:
            inner = self.service(
                max_in_flight=max_in_flight,
                track_trajectories=track_trajectories,
                allocation=allocation,
                journal=journal,
                journal_meta=journal_meta,
                snapshot_every=snapshot_every,
            )
        aservice = AsyncSchedulerService(inner, name=name)
        if resume:
            for handle in inner.handles:
                aservice.adopt(handle)
        return GatewayApp(
            aservice,
            auth=TokenAuth(tokens),
            routes=routes,
            presets=presets,
            heartbeat=heartbeat,
        )

    def submit(self, job_name: str, query: Query, **job_inputs: Any) -> Any:
        """Run one query end to end through the registered job (blocking).

        A thin wrapper over the service: submit, run a one-slot service to
        idle, return ``handle.result()``.  Jobs whose runner was registered
        explicitly (rather than derived from a submitter) keep executing
        through that runner, as they always did.
        """
        if job_name not in self._submitters or job_name in self._explicit_runners:
            # Plans here; the service path plans inside service.submit
            # (both raise KeyError for unknown job names).
            plan = self.job_manager.plan(job_name, query)
            runner = self._runners[job_name]
            return runner(self.engine, plan, dict(job_inputs))
        service = self.service(max_in_flight=1, track_trajectories=False)
        handle = service.submit(job_name, query, **job_inputs)
        service.run_until_idle()
        return handle.result()

    def submit_many(
        self,
        requests: Sequence[tuple[str, Query, dict[str, Any]]],
        max_in_flight: int = 4,
    ) -> list[Any]:
        """Run several queries — possibly of different job types — at once.

        A blocking wrapper over one shared service (one scheduler, one
        worker pool, one merged arrival stream): HITs from different
        queries interleave, gold evidence from any of them sharpens the
        shared accuracy estimator, and up to ``max_in_flight`` HITs collect
        concurrently.  Results come back in request order.

        Failure semantics are all-or-nothing: unknown job names are
        rejected before anything is planned, and if any submitter raises
        (missing inputs, unmatched query) it does so during the eager
        ``service.submit`` validation — before the service is pumped, so
        nothing has been published to the market, no cost is incurred and
        no request executes partially.

        Parameters
        ----------
        requests:
            ``(job_name, query, job_inputs)`` triples; each job must have
            been registered with a scheduler-aware submitter.
        max_in_flight:
            Concurrent-HIT budget across *all* requests.
        """
        missing = sorted({name for name, _, _ in requests if name not in self._submitters})
        if missing:
            raise ValueError(
                f"job(s) {missing!r} have no scheduler-aware submitter; "
                "register one to use submit_many"
            )
        service = self.service(max_in_flight=max_in_flight, track_trajectories=False)
        handles = [
            service.submit(job_name, query, **job_inputs)
            for job_name, query, job_inputs in requests
        ]
        service.run_until_idle()
        return [handle.result() for handle in handles]

    @property
    def total_cost(self) -> float:
        """Everything this system has spent on the market so far."""
        return self.market.ledger.total_cost


def runner_from_submitter(submitter: JobSubmitter) -> JobRunner:
    """Derive the blocking runner from a scheduler-aware submitter.

    Enqueues on a private one-slot scheduler, runs it, and finalizes —
    exactly what a hand-written serial runner would do, so the two paths
    (``submit`` and ``submit_many``) can never drift on accepted inputs.
    """

    def runner(
        engine: CrowdsourcingEngine, plan: ProcessingPlan, inputs: dict[str, Any]
    ) -> Any:
        scheduler = HITScheduler(engine, max_in_flight=1)
        finalize = submitter(engine, scheduler, plan, inputs)
        scheduler.run()
        return finalize()

    return runner


def _tsa_submitter(
    engine: CrowdsourcingEngine,
    sink: BatchSink,
    plan: ProcessingPlan,
    inputs: dict[str, Any],
) -> Callable[[], Any]:
    """Default submitter for the twitter-sentiment job.

    Expected inputs: ``gold_tweets`` (required), plus either ``stream``
    (a :class:`~repro.tsa.stream.TweetStream`) or ``tweets`` (an explicit
    corpus); optional ``batch_size`` and ``worker_count``.  Passing
    ``windows=N`` (requires ``stream``) turns the query into a *standing*
    query: N consecutive ``(t + i·w)`` windows of the stream flow through
    the one handle (``windows=None`` with the key present follows the
    stream to its end).
    """
    from repro.tsa.app import TSAJob

    if "gold_tweets" not in inputs:
        raise ValueError("twitter-sentiment requires gold_tweets")
    job = TSAJob(
        engine,
        stream=inputs.get("stream"),
        batch_size=inputs.get("batch_size", 20),
    )
    if "windows" in inputs:
        group = job.submit_standing(
            sink,
            plan.query,
            gold_tweets=inputs["gold_tweets"],
            windows=inputs["windows"],
            worker_count=inputs.get("worker_count"),
        )
    else:
        group = job.submit(
            sink,
            plan.query,
            gold_tweets=inputs["gold_tweets"],
            tweets=inputs.get("tweets"),
            worker_count=inputs.get("worker_count"),
        )
    return lambda: job.assemble(plan.query, group)


def _tsa_projector(
    engine: CrowdsourcingEngine,
    plan: ProcessingPlan,
    inputs: dict[str, Any],
) -> Projection:
    """Cost projector for the twitter-sentiment job.

    Accepts the same inputs as :func:`_tsa_submitter` and applies the
    same validation, but only *counts* the work: items and HITs per
    window.  Touches neither the market nor a scheduler.
    """
    from repro.tsa.app import TSAJob

    if "gold_tweets" not in inputs:
        raise ValueError("twitter-sentiment requires gold_tweets")
    job = TSAJob(
        engine,
        stream=inputs.get("stream"),
        batch_size=inputs.get("batch_size", 20),
    )
    if "windows" in inputs:
        return job.project_standing(plan.query, windows=inputs["windows"])
    return job.project(plan.query, tweets=inputs.get("tweets"))


def _it_projector(
    engine: CrowdsourcingEngine,
    plan: ProcessingPlan,
    inputs: dict[str, Any],
) -> Projection:
    """Cost projector for the image-tagging job (counterpart of
    :func:`_it_submitter`; counts tag questions and HITs only)."""
    from repro.it.app import ITJob

    if "images" not in inputs:
        raise ValueError("image-tagging requires images")
    job = ITJob(engine, images_per_hit=inputs.get("images_per_hit", 5))
    return job.project(inputs["images"])


def _it_submitter(
    engine: CrowdsourcingEngine,
    sink: BatchSink,
    plan: ProcessingPlan,
    inputs: dict[str, Any],
) -> Callable[[], Any]:
    """Default submitter for the image-tagging job.

    Expected inputs: ``images`` (required), optional ``gold_images``,
    ``images_per_hit`` and ``worker_count``.  The query's required
    accuracy drives prediction.
    """
    from repro.it.app import ITJob

    if "images" not in inputs:
        raise ValueError("image-tagging requires images")
    job = ITJob(engine, images_per_hit=inputs.get("images_per_hit", 5))
    group = job.submit(
        sink,
        inputs["images"],
        required_accuracy=plan.query.required_accuracy,
        gold_images=inputs.get("gold_images", ()),
        worker_count=inputs.get("worker_count"),
    )
    return lambda: job.assemble(inputs["images"], group)
