"""Application 1: Twitter sentiment analytics over a synthetic stream."""

from repro.tsa.app import TSAJob, TSAResult, build_tsa_spec, movie_query
from repro.tsa.continuous import ContinuousTSA, LiveSnapshot
from repro.tsa.lexicon import MOVIE_CATALOG, PAPER_TEST_MOVIES, SENTIMENTS
from repro.tsa.stream import TweetStream
from repro.tsa.tweets import (
    Tweet,
    TweetGeneratorConfig,
    generate_tweets,
    tweet_to_question,
)

__all__ = [
    "TSAJob",
    "TSAResult",
    "build_tsa_spec",
    "movie_query",
    "ContinuousTSA",
    "LiveSnapshot",
    "MOVIE_CATALOG",
    "PAPER_TEST_MOVIES",
    "SENTIMENTS",
    "TweetStream",
    "Tweet",
    "TweetGeneratorConfig",
    "generate_tweets",
    "tweet_to_question",
]
