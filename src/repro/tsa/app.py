"""Application 1: Twitter Sentiment Analytics deployed on CDAS (paper §2.2, §5.1).

Wires the whole Figure-2 pipeline for sentiment queries: the job manager
holds the TSA spec, the program executor filters the tweet stream by the
query keywords and batches candidates, the crowdsourcing engine runs each
batch through prediction → HIT → verification, and the executor summarises
the per-tweet verdicts into the §4.3 opinion report.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, replace

from repro.core.presentation import OpinionReport
from repro.engine.engine import CrowdsourcingEngine, HITRunResult, QuestionRecord
from repro.engine.executor import ProgramExecutor, batched
from repro.engine.jobs import JobSpec
from repro.engine.planner import Projection, ceil_div, window_cost
from repro.engine.query import Query
from repro.engine.scheduler import (
    BatchSink,
    BatchSpec,
    HITScheduler,
    SessionGroup,
    specs_from_batches,
)
from repro.engine.templates import QueryTemplate
from repro.tsa.stream import TweetStream
from repro.tsa.tweets import Tweet, tweet_to_question

__all__ = ["build_tsa_spec", "TSAResult", "TSAJob", "movie_query"]


def build_tsa_spec(text_filter=None) -> JobSpec:
    """The TSA job specification registered with the job manager."""
    template = QueryTemplate(
        job_name="twitter-sentiment",
        instructions=(
            "Read each tweet about the movie and select the opinion it "
            "expresses. Add one or two keywords explaining your choice."
        ),
        item_label="Tweet",
        prompt="What is the opinion of this review?",
        text_filter=text_filter,
    )
    return JobSpec(
        name="twitter-sentiment",
        template=template,
        computer_tasks=(
            "retrieve the twitter stream",
            "filter tweets by the query keywords",
            "buffer candidates and build HITs from the query template",
            "summarise verified answers into the opinion report",
        ),
        human_tasks=(
            "classify each tweet as positive / neutral / negative",
            "attach reason keywords for the chosen opinion",
        ),
    )


def movie_query(
    movie: str, required_accuracy: float, window: int = 24, timestamp: float = 0.0
) -> Query:
    """Convenience: the paper's per-movie query (one-day window)."""
    return Query(
        keywords=(movie,),
        required_accuracy=required_accuracy,
        domain=("positive", "neutral", "negative"),
        timestamp=timestamp,
        window=window,
        subject=movie,
    )


@dataclass(frozen=True)
class TSAResult:
    """Outcome of one TSA query.

    Attributes
    ----------
    report:
        The §4.3 opinion summary (percentages + reasons).
    records:
        Per-tweet verdicts with their backing observations.
    hit_results:
        The engine-level result of every HIT the query ran.
    """

    report: OpinionReport
    records: tuple[QuestionRecord, ...]
    hit_results: tuple[HITRunResult, ...]

    @property
    def accuracy(self) -> float:
        """Ground-truth accuracy over all processed tweets."""
        if not self.records:
            raise ValueError("no records")
        return sum(r.correct for r in self.records) / len(self.records)

    @property
    def cost(self) -> float:
        return sum(h.cost for h in self.hit_results)

    @property
    def workers_per_hit(self) -> float:
        if not self.hit_results:
            raise ValueError("no HITs were run")
        return sum(h.workers_hired for h in self.hit_results) / len(self.hit_results)


class TSAJob:
    """Run sentiment queries end-to-end on a crowdsourcing engine.

    Parameters
    ----------
    engine:
        A calibrated :class:`CrowdsourcingEngine` (calibrate first or let
        :meth:`run` do it from the gold tweets).
    stream:
        The tweet stream to query; may be omitted when tweets are passed
        to :meth:`run` directly.
    batch_size:
        Tweets per HIT (the paper's ``B``; deployment used 100, the
        default here is smaller to keep simulations quick).
    max_in_flight:
        How many of the query's HITs may collect concurrently when
        :meth:`run` drives its own scheduler.  The default of 1 reproduces
        the historical serial behaviour exactly; raising it interleaves
        the query's batches on one merged arrival stream.
    """

    def __init__(
        self,
        engine: CrowdsourcingEngine,
        stream: TweetStream | None = None,
        batch_size: int = 20,
        max_in_flight: int = 1,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        if max_in_flight <= 0:
            raise ValueError(f"max_in_flight must be positive, got {max_in_flight}")
        self.engine = engine
        self.stream = stream
        self.batch_size = batch_size
        self.max_in_flight = max_in_flight
        self.executor = ProgramExecutor(text_of=lambda t: t.text)
        self.spec = build_tsa_spec()

    def run(
        self,
        query: Query,
        gold_tweets: Sequence[Tweet],
        tweets: Sequence[Tweet] | None = None,
        worker_count: int | None = None,
    ) -> TSAResult:
        """Process one movie query (Algorithm 1 at application level).

        Parameters
        ----------
        query:
            Definition 1 query; the subject's tweets must exist in the
            stream (or in ``tweets``).
        gold_tweets:
            Labelled tweets used as §3.3 gold probes (never scored as
            results).
        tweets:
            Explicit candidate list, bypassing the stream (used by
            experiments that control the corpus directly).
        worker_count:
            Force ``n`` instead of asking the prediction model.
        """
        scheduler = HITScheduler(self.engine, max_in_flight=self.max_in_flight)
        group = self.submit(
            scheduler,
            query,
            gold_tweets=gold_tweets,
            tweets=tweets,
            worker_count=worker_count,
        )
        scheduler.run()
        return self.assemble(query, group)

    def submit(
        self,
        sink: BatchSink,
        query: Query,
        gold_tweets: Sequence[Tweet],
        tweets: Sequence[Tweet] | None = None,
        worker_count: int | None = None,
    ) -> SessionGroup:
        """Enqueue the query's batches on a shared scheduler or service sink.

        Candidates are resolved eagerly (so an unmatched query still fails
        fast), but batches are fed lazily: each HIT's questions are built
        only when the sink opens a publish slot for it.  Assemble the
        query's report from the returned group with :meth:`assemble` after
        the sink has run.
        """
        if tweets is None:
            if self.stream is None:
                raise ValueError("no stream configured and no tweets passed")
            candidates = list(self.stream.window(query))
        else:
            candidates = list(self.executor.filter_stream(tweets, query))
        if not candidates:
            raise ValueError(
                f"query {query.subject!r} matched no tweets in its window"
            )
        gold_questions = tuple(tweet_to_question(t) for t in gold_tweets)
        return sink.add_batches(
            (
                [tweet_to_question(t) for t in batch]
                for batch in batched(candidates, self.batch_size)
            ),
            required_accuracy=query.required_accuracy,
            gold_pool=gold_questions,
            worker_count=worker_count,
        )

    def submit_standing(
        self,
        sink: BatchSink,
        query: Query,
        gold_tweets: Sequence[Tweet],
        windows: int | None = None,
        worker_count: int | None = None,
    ) -> SessionGroup:
        """Deploy the query as a *standing* query over consecutive windows.

        Definition 1 queries are standing jobs: the window ``(t, w)`` keeps
        sliding forward while the user observes.  This feeds window
        ``i = 0, 1, 2, …`` — each covering
        ``[t + i·w·unit, t + (i+1)·w·unit)`` of the configured stream —
        through one lazy source, so a single
        :class:`~repro.engine.service.QueryHandle` tracks the whole
        standing query while earlier windows' HITs are still collecting.

        Parameters
        ----------
        windows:
            How many consecutive windows to follow; ``None`` follows the
            stream until no tweet lies at or beyond the next window start.
            Windows that match no tweets are skipped (an idle stream costs
            nothing); a standing query whose *every* window is empty fails
            at assembly like an unmatched one-shot query.
        """
        if self.stream is None:
            raise ValueError("standing queries need a configured stream")
        gold_questions = tuple(tweet_to_question(t) for t in gold_tweets)

        def window_specs(candidates: Sequence[Tweet]) -> Iterator[BatchSpec]:
            return specs_from_batches(
                (
                    [tweet_to_question(t) for t in batch]
                    for batch in batched(candidates, self.batch_size)
                ),
                query.required_accuracy,
                gold_questions,
                worker_count,
            )

        if hasattr(sink, "add_window_source"):
            # Service intake: hand each window over with its projected
            # cost so plan-reserved standing queries re-reserve per
            # window (and are refused cleanly when the budget runs dry
            # mid-stream).  The cost is a thunk: plan-less standing
            # queries never evaluate it, and reserved ones price it at
            # reservation time — the engine's μ then, like the publishes
            # that follow.
            schedule = self.engine.market.ledger.schedule

            def cost_of(hits: int) -> Callable[[], float]:
                def price() -> float:
                    workers = (
                        worker_count
                        if worker_count is not None
                        else self.engine.predict_workers(query.required_accuracy)
                    )
                    return window_cost(schedule, workers, hits)

                return price

            def costed_windows() -> Iterator[
                tuple[Callable[[], float], Iterator[BatchSpec]]
            ]:
                for candidates in self._standing_windows(query, windows):
                    if not candidates:
                        continue
                    hits = ceil_div(len(candidates), self.batch_size)
                    yield cost_of(hits), window_specs(candidates)

            return sink.add_window_source(costed_windows())

        def specs() -> Iterator[BatchSpec]:
            for candidates in self._standing_windows(query, windows):
                yield from window_specs(candidates)

        return sink.add_source(specs())

    def _standing_windows(
        self, query: Query, windows: int | None
    ) -> Iterator[list[Tweet]]:
        """Materialise each standing window's candidate list (possibly
        empty), window ``i`` covering ``[t + i·w·unit, t + (i+1)·w·unit)``
        of the configured stream — shared by submission and projection so
        the two can never disagree on what a window contains."""
        stream = self.stream
        assert stream is not None
        start = (
            float(query.timestamp)
            if not isinstance(query.timestamp, str)
            else 0.0
        )
        horizon = stream.tweets[-1].timestamp if len(stream) else start
        index = 0
        while True:
            if windows is not None and index >= windows:
                return
            window_start = start + index * query.window * stream.unit_seconds
            if windows is None and window_start > horizon:
                return
            shifted = replace(query, timestamp=window_start)
            yield list(stream.window(shifted))
            index += 1

    # -- cost projection -----------------------------------------------------

    def project(
        self, query: Query, tweets: Sequence[Tweet] | None = None
    ) -> Projection:
        """Count a one-shot query's work (items, HITs) without running it.

        Mirrors :meth:`submit`'s candidate resolution and validation but
        touches neither the market nor a scheduler — the planner's view
        of the query.
        """
        if tweets is None:
            if self.stream is None:
                raise ValueError("no stream configured and no tweets passed")
            candidates = list(self.stream.window(query))
        else:
            candidates = list(self.executor.filter_stream(tweets, query))
        if not candidates:
            raise ValueError(
                f"query {query.subject!r} matched no tweets in its window"
            )
        hits = ceil_div(len(candidates), self.batch_size)
        return Projection(windows=((len(candidates), hits),))

    def project_standing(
        self, query: Query, windows: int | None = None
    ) -> Projection:
        """Per-window ``(items, hits)`` counts of a standing query
        (empty windows skipped, exactly as submission skips them)."""
        if self.stream is None:
            raise ValueError("standing queries need a configured stream")
        counts = []
        for candidates in self._standing_windows(query, windows):
            if not candidates:
                continue
            counts.append(
                (len(candidates), ceil_div(len(candidates), self.batch_size))
            )
        return Projection(windows=tuple(counts), standing=True)

    def assemble(self, query: Query, group: SessionGroup) -> TSAResult:
        """Fold a completed group's per-HIT results into the query report."""
        hit_results = group.results
        records = tuple(r for h in hit_results for r in h.records)
        outcomes = [r.outcome() for r in records]
        report = self.executor.summarize(query, outcomes)
        return TSAResult(
            report=report, records=records, hit_results=tuple(hit_results)
        )
