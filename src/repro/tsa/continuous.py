"""Continuous query processing: the live TSA view of paper §4.3 / Figure 4.

A TSA query runs over a time window; tweets keep arriving while earlier
HITs are still collecting answers.  The paper's interface (Figure 4 shows
*Kung Fu Panda 2*: 12-minute window, 4 minutes elapsed, 20 tweets, 70 %
positive) therefore re-renders the opinion report continuously:

* accepted questions contribute a unit vote (``h = 1``),
* in-flight questions contribute their current Equation-4 confidences
  (``h = ρ``), per Theorem 6 valid at any prefix of the answer stream,
* each answer lists its supporting tweets, newest first.

:class:`ContinuousTSA` drives this on the simulator: it merges the tweet
stream and the per-tweet answer arrivals onto one simulated clock and
exposes :meth:`advance_to`, returning a :class:`LiveSnapshot` of the
report at that instant.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.amt.pool import WorkerPool
from repro.amt.worker import behaviour_for
from repro.core.confidence import answer_confidences
from repro.core.presentation import OpinionReport, QuestionOutcome, build_report
from repro.core.termination import TerminationStrategy
from repro.core.types import Verdict, WorkerAnswer
from repro.engine.query import Query
from repro.tsa.stream import TweetStream
from repro.tsa.tweets import Tweet, tweet_to_question
from repro.util.rng import substream

__all__ = ["LiveSnapshot", "ContinuousTSA"]


@dataclass(frozen=True)
class LiveSnapshot:
    """The live view at one simulated instant (Figure 4's screen state).

    Attributes
    ----------
    elapsed_seconds:
        Clock position within the query window.
    report:
        The §4.3 opinion report over every tweet seen so far.
    tweets_seen / tweets_resolved:
        How many tweets entered the view and how many have an accepted
        answer already.
    answers_outstanding:
        Worker answers still in flight across all open questions — the
        "progress of the current running HIT" Figure 4 displays.
    supporting_tweets:
        Per answer label, the matching tweet texts, newest first (what
        expands when the user clicks an answer).
    """

    elapsed_seconds: float
    report: OpinionReport
    tweets_seen: int
    tweets_resolved: int
    answers_outstanding: int
    supporting_tweets: dict[str, tuple[str, ...]]

    def render(self) -> str:
        lines = [
            f"t = {self.elapsed_seconds:.0f}s — {self.tweets_seen} tweets seen, "
            f"{self.tweets_resolved} resolved, "
            f"{self.answers_outstanding} answers outstanding",
            self.report.render(),
        ]
        return "\n".join(lines)


@dataclass
class _LiveQuestion:
    """One tweet's in-flight aggregation state."""

    tweet: Tweet
    arrivals: list[tuple[float, WorkerAnswer]]  # (absolute time, answer)
    received: list[WorkerAnswer]
    accepted: Verdict | None = None
    cursor: int = 0


class ContinuousTSA:
    """Stream a TSA query through simulated time (Algorithm 5, per tweet).

    Parameters
    ----------
    pool:
        Worker population answering the per-tweet questions.
    stream:
        The tweet source; tweets become visible at their timestamps.
    query:
        Definition-1 query (window measured in ``stream.unit_seconds``).
    workers_per_tweet:
        Hired workers per tweet (``g(C)`` in the full engine; explicit
        here so live-view demos stay small).
    worker_accuracy:
        Accuracy estimate attached to answers (a scalar oracle/estimate;
        the full engine wires gold-sampling instead).
    mean_response_seconds:
        Mean of the exponential answer latency per worker.
    strategy:
        Optional §4.2.2 stopping rule; when it fires for a tweet, that
        tweet's verdict is *accepted* and contributes ``h = 1``.
    """

    def __init__(
        self,
        pool: WorkerPool,
        stream: TweetStream,
        query: Query,
        workers_per_tweet: int = 7,
        worker_accuracy: float = 0.7,
        mean_response_seconds: float = 90.0,
        strategy: TerminationStrategy | None = None,
        seed: int = 0,
    ) -> None:
        if workers_per_tweet <= 0:
            raise ValueError(f"workers per tweet must be positive: {workers_per_tweet}")
        if not 0.0 < worker_accuracy < 1.0:
            raise ValueError(f"worker accuracy must be in (0,1): {worker_accuracy}")
        if mean_response_seconds <= 0:
            raise ValueError(
                f"mean response time must be positive: {mean_response_seconds}"
            )
        self.pool = pool
        self.query = query
        self.domain = query.answer_domain()
        self.workers_per_tweet = workers_per_tweet
        self.worker_accuracy = worker_accuracy
        self.strategy = strategy
        self._questions: list[_LiveQuestion] = []
        self._build_timeline(stream, mean_response_seconds, seed)

    # -- construction -------------------------------------------------------

    def _build_timeline(
        self, stream: TweetStream, mean_response: float, seed: int
    ) -> None:
        """Pre-simulate every answer arrival (deterministic in the seed)."""
        for tweet in stream.window(self.query):
            question = tweet_to_question(tweet)
            rng = substream(seed, f"live:{tweet.tweet_id}")
            workers = self.pool.sample(self.workers_per_tweet, rng)
            arrivals = []
            for profile in workers:
                answer, keywords = behaviour_for(profile).answer(
                    profile, question, rng
                )
                at = tweet.timestamp + float(rng.exponential(mean_response))
                arrivals.append(
                    (
                        at,
                        WorkerAnswer(
                            worker_id=profile.worker_id,
                            answer=answer,
                            accuracy=self.worker_accuracy,
                            keywords=keywords,
                            timestamp=at,
                        ),
                    )
                )
            arrivals.sort(key=lambda pair: pair[0])
            self._questions.append(
                _LiveQuestion(tweet=tweet, arrivals=arrivals, received=[])
            )
        self._questions.sort(key=lambda lq: lq.tweet.timestamp)

    # -- time stepping -------------------------------------------------------

    def advance_to(self, elapsed_seconds: float) -> LiveSnapshot:
        """Deliver everything due by ``elapsed_seconds`` and snapshot.

        Monotone: advancing backwards is an error (the market cannot
        un-deliver answers).
        """
        if self._questions and elapsed_seconds < 0:
            raise ValueError(f"cannot advance to negative time {elapsed_seconds}")
        start = float(self.query.timestamp) if not isinstance(
            self.query.timestamp, str
        ) else 0.0
        now = start + elapsed_seconds
        for lq in self._questions:
            if lq.cursor > 0 and lq.arrivals[lq.cursor - 1][0] > now:
                raise ValueError("advance_to must be monotone non-decreasing")
            # Stop delivering once accepted: the outstanding assignments
            # are cancelled (§4.2.2 footnote 3) and never arrive.
            while (
                lq.accepted is None
                and lq.cursor < len(lq.arrivals)
                and lq.arrivals[lq.cursor][0] <= now
            ):
                lq.received.append(lq.arrivals[lq.cursor][1])
                lq.cursor += 1
                if self.strategy is not None:
                    self._maybe_accept(lq)
            if (
                lq.accepted is None
                and lq.cursor == len(lq.arrivals)
                and lq.received
            ):
                self._accept(lq)  # all answers in: finalise
        return self._snapshot(elapsed_seconds, now)

    def _maybe_accept(self, lq: _LiveQuestion) -> None:
        from repro.core.confidence import answer_log_weights
        from repro.core.termination import TerminationSnapshot

        snapshot = TerminationSnapshot(
            log_weights=answer_log_weights(lq.received, self.domain),
            domain=self.domain,
            remaining_workers=len(lq.arrivals) - lq.cursor,
            mean_accuracy=self.worker_accuracy,
        )
        if self.strategy.should_stop(snapshot):
            self._accept(lq)

    def _accept(self, lq: _LiveQuestion) -> None:
        confidences = answer_confidences(lq.received, self.domain)
        best = max(self.domain.labels, key=lambda lab: confidences[lab])
        lq.accepted = Verdict(
            answer=best,
            confidence=confidences[best],
            scores=confidences,
            method="verification-online",
        )

    # -- snapshotting ----------------------------------------------------------

    def _outcome(self, lq: _LiveQuestion) -> QuestionOutcome | None:
        if lq.accepted is not None:
            return QuestionOutcome(
                question_id=lq.tweet.tweet_id,
                verdict=lq.accepted,
                accepted=True,
                observation=tuple(lq.received),
            )
        if not lq.received:
            return None  # invisible until the first answer lands
        confidences = answer_confidences(lq.received, self.domain)
        best = max(self.domain.labels, key=lambda lab: confidences[lab])
        return QuestionOutcome(
            question_id=lq.tweet.tweet_id,
            verdict=Verdict(
                answer=best,
                confidence=confidences[best],
                scores=confidences,
                method="verification-online",
            ),
            accepted=False,
            observation=tuple(lq.received),
        )

    def _snapshot(self, elapsed: float, now: float) -> LiveSnapshot:
        visible = [lq for lq in self._questions if lq.tweet.timestamp <= now]
        outcomes = []
        outstanding = 0
        resolved = 0
        supporting: dict[str, list[tuple[float, str]]] = {
            lab: [] for lab in self.domain.labels
        }
        for lq in visible:
            if lq.accepted is None:
                # Accepted questions' outstanding assignments would be
                # cancelled (§4.2.2 footnote 3), so they are not pending.
                outstanding += len(lq.arrivals) - lq.cursor
            outcome = self._outcome(lq)
            if outcome is None:
                continue
            outcomes.append(outcome)
            if outcome.accepted:
                resolved += 1
            best = outcome.verdict.answer
            if best is not None:
                supporting[best].append((lq.tweet.timestamp, lq.tweet.text))
        if outcomes:
            report = build_report(self.query.subject, outcomes, self.domain)
        else:
            report = OpinionReport(
                subject=self.query.subject,
                rows=tuple(),
                question_count=0,
            )
        supporting_sorted = {
            lab: tuple(text for _, text in sorted(items, reverse=True))
            for lab, items in supporting.items()
        }
        return LiveSnapshot(
            elapsed_seconds=elapsed,
            report=report,
            tweets_seen=len(visible),
            tweets_resolved=resolved,
            answers_outstanding=outstanding,
            supporting_tweets=supporting_sorted,
        )

    def timeline(self, checkpoints: Sequence[float]) -> list[LiveSnapshot]:
        """Snapshots at increasing checkpoints (a whole Figure-4 session)."""
        ordered = list(checkpoints)
        if ordered != sorted(ordered):
            raise ValueError("checkpoints must be non-decreasing")
        return [self.advance_to(t) for t in ordered]
