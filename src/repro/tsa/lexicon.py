"""Sentiment lexicon and tweet templates for the synthetic Twitter corpus.

The generator composes tweets from four template families, calibrated so
the machine baseline lands in the paper's LIBSVM band (~0.5–0.75 per
movie, Figure 5) while crowd workers stay far more accurate:

* **plain** — clearly separable class vocabulary.  A bag-of-words model
  and humans both do well.
* **contrast pairs** — mirrored templates whose *token multiset is
  identical across opposite truths* ("{pos} even though the {aspect} was
  {neg}" vs "{neg} even though the {aspect} was {pos}").  Only word order
  disambiguates, so a bag-of-words SVM is at chance between positive and
  negative while humans barely notice (small positive difficulty).
* **hard** — sarcasm / negation / reported speech, the paper's "Avatar:
  The Last Airbender sucks... I'm disowning him" phenomenon.  Every hard
  template has an *opposite-truth sibling sharing its distinctive tokens*
  so the SVM cannot memorise give-away words; workers carry a substantial
  difficulty here, matching §5.1.2's observation that real workers also
  fail on these.
* **ambiguous** — terse tweets whose sentiment genuinely is not in the
  text ("no words for {movie}"); truth is sampled from the class prior,
  difficulty is high for everyone.
"""

from __future__ import annotations

__all__ = [
    "SENTIMENTS",
    "POSITIVE_WORDS",
    "NEGATIVE_WORDS",
    "NEUTRAL_WORDS",
    "NEUTRAL_PHRASES",
    "ASPECTS",
    "PLAIN_FRAMES",
    "WORDS_BY_SENTIMENT",
    "CONTRAST_TEMPLATES",
    "HARD_TEMPLATES",
    "AMBIGUOUS_TEMPLATES",
    "MOVIE_CATALOG",
    "PAPER_TEST_MOVIES",
]

#: The TSA answer domain R (paper §5.1: Positive / Neutral / Negative).
SENTIMENTS: tuple[str, ...] = ("positive", "neutral", "negative")

POSITIVE_WORDS: tuple[str, ...] = (
    "awesome", "amazing", "brilliant", "fantastic", "great", "superb",
    "stunning", "hilarious", "perfect", "wonderful", "gripping",
    "beautiful", "incredible", "outstanding",
)

NEGATIVE_WORDS: tuple[str, ...] = (
    "terrible", "awful", "boring", "disappointing", "horrible", "dull",
    "messy", "lame", "painful", "unwatchable", "forgettable", "cringey",
    "tedious", "pointless",
)

#: Sentiment-free chatter used for neutral tweets.
NEUTRAL_PHRASES: tuple[str, ...] = (
    "tickets booked for {movie} this weekend",
    "anyone watching {movie} tonight?",
    "{movie} opens friday at the downtown cinema",
    "queueing for {movie}, popcorn in hand",
    "{movie} runtime is about two hours apparently",
    "double feature tonight, starting with {movie}",
    "is {movie} showing in 3d anywhere?",
    "heading to the premiere of {movie} later",
)

#: Movie aspects — the reason keywords workers attach (§4.3) and shared
#: vocabulary across classes.
ASPECTS: tuple[str, ...] = (
    "acting", "plot", "soundtrack", "visuals", "effects", "cast",
    "script", "ending", "pacing", "humor", "cinematography", "dialogue",
)

#: Neutral filler adjectives for the shared frames.
NEUTRAL_WORDS: tuple[str, ...] = (
    "okay", "fine", "average", "watchable", "passable", "decent enough",
    "middling", "unremarkable",
)

#: Straightforward tweets use *frames shared by every sentiment class*:
#: only the ``{word}`` slot (a positive / neutral / negative adjective)
#: carries the class.  Sharing the frames is essential — if each class had
#: its own phrasing, a bag-of-words model would key on the frame tokens and
#: sidestep the sentiment words entirely, which is not how real tweets
#: behave.  Difficulty 0 — readable at a glance for humans.
PLAIN_FRAMES: tuple[str, ...] = (
    "just watched {movie} and it was {word}",
    "the {aspect} in {movie} is {word}",
    "{movie}: {word}",
    "that was {word}. {movie}. that's the review",
    "{movie} felt {word} overall, especially the {aspect}",
    "saw {movie} last night, honestly {word}",
    "verdict on {movie}: {word}, {aspect} included",
)

#: Per-class word banks for the shared frames.
WORDS_BY_SENTIMENT: dict[str, tuple[str, ...]] = {
    "positive": POSITIVE_WORDS,
    "negative": NEGATIVE_WORDS,
    "neutral": NEUTRAL_WORDS,
}

#: Mirror-image template pairs.  Each entry is
#: ``(template, truth, difficulty)``; consecutive entries form a pair with
#: identical token multisets and opposite truth, so bag-of-words carries no
#: signal between positive and negative.
CONTRAST_TEMPLATES: tuple[tuple[str, str, float], ...] = (
    (
        "{movie} is {pos_word} even though the {aspect} was {neg_word}",
        "positive",
        0.1,
    ),
    (
        "{movie} is {neg_word} even though the {aspect} was {pos_word}",
        "negative",
        0.1,
    ),
    (
        "started {neg_word} but {movie} ended {pos_word}, the {aspect} wins you over",
        "positive",
        0.15,
    ),
    (
        "started {pos_word} but {movie} ended {neg_word}, the {aspect} wins you over",
        "negative",
        0.15,
    ),
    (
        "expected {neg_word}, got {pos_word}. {movie} surprised me, {aspect} and all",
        "positive",
        0.1,
    ),
    (
        "expected {pos_word}, got {neg_word}. {movie} surprised me, {aspect} and all",
        "negative",
        0.1,
    ),
)

#: Sarcasm / negation / reported speech — *polarity-inverting* templates.
#: Each carries one ``{word}`` slot filled with a positive or negative word
#: (50/50); the context inverts it, so the truth is the *opposite* of the
#: word's surface polarity.  A bag-of-words model keyed on surface polarity
#: is therefore systematically wrong here (below chance), exactly the
#: failure the paper's "Avatar sucks... I'm disowning him" example shows.
#: Entry format: ``(template, difficulty)``.
HARD_TEMPLATES: tuple[tuple[str, float], ...] = (
    # Reported speech, speaker disagrees with the quote.
    ("my nephew just said that {movie} is {word}... i'm disowning him", 0.6),
    ("critics keep calling {movie} {word}. the critics are wrong on this one", 0.4),
    # Sarcastic agreement with the opposite.
    ("oh sure, {movie} is {word}... sure it is", 0.55),
    ("riiight, because {movie} was sooo {word}", 0.55),
    # Plain negation.
    ("{movie} is not {word}, not even close", 0.35),
    ("nobody could call {movie} {word} with a straight face", 0.45),
)

#: Terse tweets whose text genuinely underdetermines the sentiment; the
#: generator samples their truth from the class prior.  Entry format:
#: ``(template, difficulty)``.
AMBIGUOUS_TEMPLATES: tuple[tuple[str, float], ...] = (
    ("{movie}... wow.", 0.65),
    ("well. {movie} happened.", 0.7),
    ("no words for {movie}", 0.7),
    ("{movie} again. third time this week.", 0.6),
    ("that was certainly a movie. {movie}.", 0.65),
    ("i have thoughts about {movie}. many thoughts.", 0.7),
)

#: The five held-out movies of paper Figure 5.
PAPER_TEST_MOVIES: tuple[str, ...] = (
    "District 9",
    "The Social Network",
    "Thor",
    "Green Lantern",
    "The Roommate",
)

#: Catalogue standing in for the paper's 200 IMDB titles (test movies
#: first, then training titles).
MOVIE_CATALOG: tuple[str, ...] = PAPER_TEST_MOVIES + (
    "Kung Fu Panda 2", "The Last Airbender", "Black Swan", "Inception",
    "True Grit", "The Fighter", "Source Code", "Super 8", "Rango",
    "Bridesmaids", "Hanna", "Limitless", "Paul", "Insidious",
    "Fast Five", "Rio", "Priest", "Beastly", "Unknown", "Drive Angry",
    "The Adjustment Bureau", "Battle Los Angeles", "Red Riding Hood",
    "Sucker Punch", "Hop", "Scream 4", "Prom", "Super Nova",
    "Water for Elephants", "Madea's Big Happy Family", "Jumping the Broom",
    "Something Borrowed", "Bad Teacher", "Green Hornet", "The Mechanic",
    "The Rite", "Sanctum", "The Ward", "No Strings Attached",
    "Just Go with It", "Gnomeo and Juliet", "The Eagle", "I Am Number Four",
    "Big Mommas", "Mars Needs Moms", "The Lincoln Lawyer", "Soul Surfer",
    "Arthur", "Your Highness", "African Cats", "Tyrannosaur",
    "The Tree of Life", "Midnight in Paris", "Super", "Hesher",
)
