"""Timestamped tweet stream with windowed, keyword-filtered retrieval.

The program executor "is responsible for retrieving the twitter stream and
checking whether the query keyword exists in a tweet" (§2.2).  This module
provides the stream side: tweets ordered by timestamp, cut to the query's
``(t, w)`` window, with per-unit rate accounting so the §3.1 cost formula
``(m_c+m_s)·n·K·w`` has a concrete ``K``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.engine.query import Query
from repro.tsa.tweets import Tweet

__all__ = ["TweetStream"]


@dataclass(frozen=True)
class TweetStream:
    """An immutable, time-ordered view over a tweet corpus.

    Attributes
    ----------
    tweets:
        The backing corpus (any order; the stream sorts once).
    unit_seconds:
        Length of one query time unit.  Definition 1's window ``w`` counts
        these units; the default is one hour.
    """

    tweets: tuple[Tweet, ...]
    unit_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.unit_seconds <= 0:
            raise ValueError(f"unit must be positive, got {self.unit_seconds}")
        ordered = tuple(sorted(self.tweets, key=lambda t: (t.timestamp, t.tweet_id)))
        object.__setattr__(self, "tweets", ordered)

    @classmethod
    def from_corpus(
        cls, tweets: Sequence[Tweet], unit_seconds: float = 3600.0
    ) -> "TweetStream":
        return cls(tweets=tuple(tweets), unit_seconds=unit_seconds)

    def __len__(self) -> int:
        return len(self.tweets)

    def window(self, query: Query) -> Iterator[Tweet]:
        """Tweets inside ``[t, t + w)`` units that match the query keywords.

        ``query.timestamp`` is interpreted as seconds on the stream clock
        (string timestamps are for display; numeric is what the simulator
        uses).
        """
        start = float(query.timestamp) if not isinstance(query.timestamp, str) else 0.0
        end = start + query.window * self.unit_seconds
        for tweet in self.tweets:
            if tweet.timestamp >= end:
                break
            if tweet.timestamp >= start and query.matches(tweet.text):
                yield tweet

    def arrival_rate(self, query: Query) -> float:
        """``K`` — matching tweets per time unit inside the query window."""
        matched = sum(1 for _ in self.window(query))
        return matched / query.window
