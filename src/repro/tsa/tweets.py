"""Ground-truthed synthetic tweet corpus (the paper's Twitter substitute).

Each generated :class:`Tweet` carries its true sentiment, a difficulty in
``[0, 1]`` and the movie aspects it mentions (the reason keywords of §4.3).
Tweets come from four template families — plain, contrast pairs, hard
(sarcasm/negation) and ambiguous — mixed by :class:`TweetGeneratorConfig`;
see :mod:`repro.tsa.lexicon` for why this mix reproduces the paper's
crowd-vs-SVM gap.  Generation is fully seeded: one ``(movies, config,
seed)`` triple always yields the identical corpus.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.amt.hit import Question
from repro.tsa.lexicon import (
    AMBIGUOUS_TEMPLATES,
    ASPECTS,
    CONTRAST_TEMPLATES,
    HARD_TEMPLATES,
    NEGATIVE_WORDS,
    NEUTRAL_PHRASES,
    PLAIN_FRAMES,
    POSITIVE_WORDS,
    SENTIMENTS,
    WORDS_BY_SENTIMENT,
)
from repro.util.rng import substream

__all__ = ["Tweet", "TweetGeneratorConfig", "generate_tweets", "tweet_to_question"]


@dataclass(frozen=True, slots=True)
class Tweet:
    """One synthetic tweet with its evaluation ground truth."""

    tweet_id: str
    movie: str
    text: str
    sentiment: str
    difficulty: float
    aspects: tuple[str, ...] = ()
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.sentiment not in SENTIMENTS:
            raise ValueError(
                f"tweet {self.tweet_id!r}: sentiment {self.sentiment!r} not in "
                f"{SENTIMENTS}"
            )
        if not 0.0 <= self.difficulty <= 1.0:
            raise ValueError(
                f"tweet {self.tweet_id!r}: difficulty {self.difficulty} not in [0, 1]"
            )


@dataclass(frozen=True, slots=True)
class TweetGeneratorConfig:
    """Corpus shape knobs.

    Attributes
    ----------
    sentiment_weights:
        Sampling weights for (positive, neutral, negative); the default
        60/10/30 mirrors the paper's Table 1 mix.  Applies to the plain
        and ambiguous families (contrast and hard templates carry their
        own truth).
    plain_fraction / contrast_fraction / hard_fraction / ambiguous_fraction:
        Template family mix; must sum to 1.  The default 40/35/15/10 lands
        the bag-of-words SVM in the paper's per-movie band while keeping
        crowd accuracy high.
    """

    sentiment_weights: tuple[float, float, float] = (0.6, 0.1, 0.3)
    plain_fraction: float = 0.40
    contrast_fraction: float = 0.35
    hard_fraction: float = 0.15
    ambiguous_fraction: float = 0.10

    def __post_init__(self) -> None:
        if len(self.sentiment_weights) != len(SENTIMENTS):
            raise ValueError("need one weight per sentiment class")
        if any(w < 0 for w in self.sentiment_weights) or sum(
            self.sentiment_weights
        ) <= 0:
            raise ValueError(f"bad sentiment weights {self.sentiment_weights!r}")
        fractions = (
            self.plain_fraction,
            self.contrast_fraction,
            self.hard_fraction,
            self.ambiguous_fraction,
        )
        if any(f < 0 for f in fractions):
            raise ValueError(f"negative template fraction in {fractions!r}")
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise ValueError(f"template fractions {fractions!r} must sum to 1")

    def family_probabilities(self) -> np.ndarray:
        return np.asarray(
            (
                self.plain_fraction,
                self.contrast_fraction,
                self.hard_fraction,
                self.ambiguous_fraction,
            )
        )


def _pick(words: Sequence[str], rng: np.random.Generator) -> str:
    return words[int(rng.integers(len(words)))]


def _fill(template: str, movie: str, rng: np.random.Generator) -> tuple[str, tuple[str, ...]]:
    """Substitute all slots; returns (text, aspects used)."""
    aspect = _pick(ASPECTS, rng)
    text = template.format(
        movie=movie,
        word="",  # only plain templates use {word}; they substitute before
        aspect=aspect,
        pos_word=_pick(POSITIVE_WORDS, rng),
        neg_word=_pick(NEGATIVE_WORDS, rng),
    )
    aspects = (aspect,) if "{aspect}" in template else ()
    return text, aspects


def _plain_tweet(
    movie: str, sentiment: str, rng: np.random.Generator
) -> tuple[str, float, tuple[str, ...]]:
    # Half the neutral tweets are pure chatter (announcements, logistics) —
    # recognisably neutral to machines and humans alike.
    if sentiment == "neutral" and rng.random() < 0.5:
        template = _pick(NEUTRAL_PHRASES, rng)
        return template.format(movie=movie), 0.0, ()
    template = _pick(PLAIN_FRAMES, rng)
    aspect = _pick(ASPECTS, rng)
    word = _pick(WORDS_BY_SENTIMENT[sentiment], rng)
    text = template.format(movie=movie, word=word, aspect=aspect)
    aspects = (aspect,) if "{aspect}" in template else ()
    return text, 0.0, aspects


def _contrast_tweet(
    movie: str, rng: np.random.Generator
) -> tuple[str, str, float, tuple[str, ...]]:
    template, sentiment, difficulty = CONTRAST_TEMPLATES[
        int(rng.integers(len(CONTRAST_TEMPLATES)))
    ]
    text, aspects = _fill(template, movie, rng)
    return text, sentiment, difficulty, aspects


def _hard_tweet(movie: str, rng: np.random.Generator) -> tuple[str, str, float]:
    """Polarity-inverting template: truth is the opposite of the surface word."""
    template, difficulty = HARD_TEMPLATES[int(rng.integers(len(HARD_TEMPLATES)))]
    if rng.random() < 0.5:
        word, sentiment = _pick(POSITIVE_WORDS, rng), "negative"
    else:
        word, sentiment = _pick(NEGATIVE_WORDS, rng), "positive"
    return template.format(movie=movie, word=word), sentiment, difficulty


def _ambiguous_tweet(
    movie: str, weights: np.ndarray, rng: np.random.Generator
) -> tuple[str, str, float]:
    template, difficulty = AMBIGUOUS_TEMPLATES[
        int(rng.integers(len(AMBIGUOUS_TEMPLATES)))
    ]
    sentiment = SENTIMENTS[int(rng.choice(len(SENTIMENTS), p=weights))]
    return template.format(movie=movie), sentiment, difficulty


def generate_tweets(
    movies: Sequence[str],
    per_movie: int,
    seed: int,
    config: TweetGeneratorConfig | None = None,
) -> list[Tweet]:
    """Generate ``per_movie`` ground-truthed tweets for every movie.

    Timestamps spread uniformly over one simulated day per movie, so
    windowed stream queries (Definition 1's ``t``/``w``) have something to
    cut on.
    """
    if per_movie <= 0:
        raise ValueError(f"per_movie must be positive, got {per_movie}")
    if not movies:
        raise ValueError("no movies given")
    cfg = config if config is not None else TweetGeneratorConfig()
    weights = np.asarray(cfg.sentiment_weights, dtype=float)
    weights = weights / weights.sum()
    family_p = cfg.family_probabilities()
    tweets: list[Tweet] = []
    day = 86_400.0
    for movie in movies:
        rng = substream(seed, f"tweets:{movie}")
        for i in range(per_movie):
            family = int(rng.choice(4, p=family_p))
            aspects: tuple[str, ...] = ()
            if family == 0:
                sentiment = SENTIMENTS[int(rng.choice(len(SENTIMENTS), p=weights))]
                text, difficulty, aspects = _plain_tweet(movie, sentiment, rng)
            elif family == 1:
                text, sentiment, difficulty, aspects = _contrast_tweet(movie, rng)
            elif family == 2:
                text, sentiment, difficulty = _hard_tweet(movie, rng)
            else:
                text, sentiment, difficulty = _ambiguous_tweet(movie, weights, rng)
            tweets.append(
                Tweet(
                    tweet_id=f"{_slug(movie)}:{i:04d}",
                    movie=movie,
                    text=text,
                    sentiment=sentiment,
                    difficulty=difficulty,
                    aspects=aspects,
                    timestamp=float(rng.uniform(0.0, day)),
                )
            )
    return tweets


def tweet_to_question(tweet: Tweet) -> Question:
    """Lift a tweet into the market's question model.

    Options are the TSA answer domain; the tweet's aspects become the
    reason keywords a correct worker may attach.
    """
    return Question(
        question_id=tweet.tweet_id,
        options=SENTIMENTS,
        truth=tweet.sentiment,
        difficulty=tweet.difficulty,
        is_gold=False,
        reason_keywords=tweet.aspects,
        payload=tweet.text,
    )


def _slug(movie: str) -> str:
    return movie.lower().replace(" ", "-").replace("'", "")
