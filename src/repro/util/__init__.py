"""Shared utilities: deterministic RNG fan-out, numeric stats, table output."""

from repro.util.rng import derive_seed, permutation_of, spawn, substream
from repro.util.stats import (
    binomial_pmf,
    binomial_tail,
    chernoff_majority_lower_bound,
    clamp_probability,
    harmonic_number,
    logsumexp,
    majority_probability,
    majority_threshold,
    mean,
    softmax_from_logs,
)
from repro.util.tables import format_percent, format_series, format_table, render_rows

__all__ = [
    "derive_seed",
    "permutation_of",
    "spawn",
    "substream",
    "binomial_pmf",
    "binomial_tail",
    "chernoff_majority_lower_bound",
    "clamp_probability",
    "harmonic_number",
    "logsumexp",
    "majority_probability",
    "majority_threshold",
    "mean",
    "softmax_from_logs",
    "format_percent",
    "format_series",
    "format_table",
    "render_rows",
]
