"""Bit-exact, vectorised replication of NumPy's seeding + PCG64 hot path.

The simulated market derives thousands of tiny private substreams per run
(`~repro.util.rng.substream`): every one costs a SHA-256, a full
``SeedSequence`` entropy mix and a ``Generator``/``PCG64`` construction —
about 25µs each, which dominates publish time.  This module re-implements
the exact arithmetic of that pipeline over NumPy *arrays of seeds*, so a
batch of substreams is initialised in a handful of vectorised operations:

* :func:`pcg64_init` — ``SeedSequence(seed)`` entropy pooling +
  ``generate_state`` + PCG64 state initialisation for a whole vector of
  seeds at once, yielding the 128-bit ``(state, inc)`` pairs as 32-bit
  limbs.
* :func:`next_words` — the PCG64 128-bit LCG step + XSL-RR output across
  all lanes, producing the same ``uint64`` word stream ``random_raw``
  would.
* :func:`doubles_from_words` / :func:`lemire32` — the exact
  ``Generator.random()`` double conversion and the exact buffered 32-bit
  Lemire bounded-integer step ``Generator.integers(n)`` uses for ranges
  that fit in 32 bits.
* :func:`pcg64_state_dict` — package one lane's ``(state, inc)`` as the
  ``bit_generator.state`` dict, so a *shared* ``Generator`` can be
  re-pointed at any substream in ~2µs (no construction) for draws that
  are not worth vectorising (ziggurat-based latency sampling,
  ``choice``-based pool acceptance).

Everything here is an *optimisation detail*: the produced draws are
bit-for-bit those of ``np.random.default_rng(seed)``, which
``tests/test_fastrng.py`` pins against NumPy itself across seeds, ranges
and interleavings.  Nothing outside ``repro.amt.market`` should need to
import this.

Scope: seeds must be non-negative and < 2**64 (``derive_seed`` yields
< 2**63, so every market substream qualifies).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pcg64_init",
    "next_words",
    "doubles_from_words",
    "lemire32",
    "lemire32_threshold",
    "standard_normal_common",
    "seeds_from_digests",
    "pcg64_state_dict",
    "state_ints",
    "pack_states",
    "state_dict_at",
]

_U64 = np.uint64
_MASK32 = _U64(0xFFFFFFFF)
_XSHIFT = _U64(16)
_SHIFT32 = _U64(32)

# SeedSequence hash constants (Melissa O'Neill's randutils initseq, as
# compiled into numpy.random.bit_generator).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = _U64(0xCA01F9DD)
_MIX_MULT_R = _U64(0x4973F715)

# hash_const evolution is value-independent, so the XOR/MUL constants of
# every hashmix call are precomputable: call k XORs with _HASH_A[k] and
# multiplies by _HASH_A[k + 1].  Entropy pooling performs 16 calls
# (4 seeding + 12 inter-pool mixing); generate_state performs 8 (one per
# 32-bit output word of the 4 uint64 state words PCG64 consumes).
_HASH_A = [_INIT_A]
for _ in range(16):
    _HASH_A.append((_HASH_A[-1] * _MULT_A) & 0xFFFFFFFF)
_HASH_B = [_INIT_B]
for _ in range(8):
    _HASH_B.append((_HASH_B[-1] * _MULT_B) & 0xFFFFFFFF)

# PCG64's default 128-bit LCG multiplier, split into 32-bit limbs
# (little-endian: limb 0 is least significant).
_PCG_MULT = (2549297995355413924 << 64) + 4865540595714422341
_PCG_MULT_LIMBS = [_U64((_PCG_MULT >> (32 * i)) & 0xFFFFFFFF) for i in range(4)]

#: 2**-53, the exact constant ``Generator.random()`` scales by.
_TO_DOUBLE = 1.0 / 9007199254740992.0


def _hashmix(value: np.ndarray, k: int, table: list[int]) -> np.ndarray:
    """One randutils hashmix call (call index ``k``) over 32-bit lanes."""
    v = value ^ _U64(table[k])
    v &= _MASK32
    v *= _U64(table[k + 1])
    v &= _MASK32
    r = v >> _XSHIFT
    r ^= v
    return r


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """randutils pool mixing: ``(x·L − y·R) mod 2**32``, xor-shifted.

    The subtraction wraps mod 2**64 first, which is congruent mod 2**32 —
    exactly the C semantics the compiled SeedSequence uses.
    """
    r = x * _MIX_MULT_L
    r -= y * _MIX_MULT_R
    r &= _MASK32
    t = r >> _XSHIFT
    t ^= r
    return t


def _mul_add_128(
    state: list[np.ndarray], mult: list[np.uint64], addend: list[np.ndarray]
) -> list[np.ndarray]:
    """``state·mult + addend mod 2**128`` on 4×32-bit-limb vectors.

    Each partial product of two 32-bit limbs fits a uint64, and each of
    columns 0–2 accumulates at most a handful of masked parts plus
    carries — far below 2**64 — so plain uint64 accumulation followed by
    one carry sweep is exact.  Column 3 is kept mod 2**32 only (its
    carry-out falls off the 128-bit value), so full products are added
    there *unmasked*: uint64 wraparound preserves the low 32 bits, the
    only ones the final mask keeps.  Inputs are never mutated; the
    accumulators are fresh arrays updated in place to keep the number of
    temporaries — the real cost at these widths — down.
    """
    s0, s1, s2, s3 = state
    m0, m1, m2, m3 = mult
    p00 = s0 * m0
    p01 = s0 * m1
    p02 = s0 * m2
    p10 = s1 * m0
    p11 = s1 * m1
    p20 = s2 * m0
    c3 = s0 * m3
    c3 += s1 * m2
    c3 += s2 * m1
    c3 += s3 * m0
    c3 += addend[3]
    c3 += p02 >> _SHIFT32
    c3 += p11 >> _SHIFT32
    c3 += p20 >> _SHIFT32
    c2 = p02 & _MASK32
    c2 += addend[2]
    c2 += p01 >> _SHIFT32
    c2 += p10 >> _SHIFT32
    c2 += p11 & _MASK32
    c2 += p20 & _MASK32
    c1 = p01 & _MASK32
    c1 += addend[1]
    c1 += p00 >> _SHIFT32
    c1 += p10 & _MASK32
    c0 = p00 & _MASK32
    c0 += addend[0]
    c1 += c0 >> _SHIFT32
    c0 &= _MASK32
    c2 += c1 >> _SHIFT32
    c1 &= _MASK32
    c3 += c2 >> _SHIFT32
    c2 &= _MASK32
    c3 &= _MASK32
    return [c0, c1, c2, c3]


def pcg64_init(seeds: "np.typing.ArrayLike") -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Initialise PCG64 for every seed; returns ``(state, inc)`` limb vectors.

    Replays ``SeedSequence(seed)`` entropy pooling, ``generate_state(4,
    uint64)`` and the PCG64 constructor exactly; the returned lists hold
    four uint64 arrays each — the 128-bit values' 32-bit limbs, least
    significant first.
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    e0 = seeds & _MASK32
    e1 = seeds >> _U64(32)
    zero = np.zeros_like(seeds)

    # Entropy seeding: word i of the (zero-padded) entropy, hashmixed.
    # A 1-word entropy [s] hashes identically to padding word 0 — the
    # hash_const schedule does not depend on values — so one uniform
    # treatment covers every seed < 2**64.
    pool = [
        _hashmix(e0, 0, _HASH_A),
        _hashmix(e1, 1, _HASH_A),
        _hashmix(zero, 2, _HASH_A),
        _hashmix(zero, 3, _HASH_A),
    ]
    # Inter-pool mixing, in SeedSequence's exact (src, dst) order.
    k = 4
    for src in range(4):
        for dst in range(4):
            if src == dst:
                continue
            pool[dst] = _mix(pool[dst], _hashmix(pool[src], k, _HASH_A))
            k += 1

    # generate_state(4, uint64): eight 32-bit words, low word first.
    words32 = [_hashmix(pool[i % 4], i, _HASH_B) for i in range(8)]
    v = []
    for i in range(4):
        w = words32[2 * i + 1] << _SHIFT32
        w |= words32[2 * i]
        v.append(w)

    # PCG64 constructor: initstate = v0‖v1, initseq = v2‖v3 (big word
    # first); inc = initseq·2 + 1; state = (0·M + inc + initstate)·M + inc.
    initstate = [v[1] & _MASK32, v[1] >> _U64(32), v[0] & _MASK32, v[0] >> _U64(32)]
    seq = [v[3] & _MASK32, v[3] >> _U64(32), v[2] & _MASK32, v[2] >> _U64(32)]
    inc = []
    carry_in = _U64(1)  # the |1 of inc = (initseq << 1) | 1
    for limb in seq:
        shifted = ((limb << _U64(1)) & _MASK32) | carry_in
        carry_in = limb >> _U64(31)
        inc.append(shifted)

    # state = inc + initstate (mod 2**128) ...
    state = []
    carry = np.zeros_like(seeds)
    for a, b in zip(inc, initstate):
        total = a + b + carry
        state.append(total & _MASK32)
        carry = total >> _U64(32)
    # ... then one LCG step: state = state·MULT + inc.
    state = _mul_add_128(state, _PCG_MULT_LIMBS, inc)
    return state, inc


def next_words(
    state: list[np.ndarray], inc: list[np.ndarray], count: int
) -> tuple[list[np.ndarray], np.ndarray]:
    """Advance every lane ``count`` steps; returns ``(state, words)``.

    ``words`` has shape ``(lanes, count)`` and equals what ``count``
    consecutive ``random_raw()`` calls on each lane would produce: PCG64
    steps the LCG *first*, then applies the XSL-RR output function.
    """
    out = []
    for _ in range(count):
        state = _mul_add_128(state, _PCG_MULT_LIMBS, inc)
        s0, s1, s2, s3 = state
        # XSL-RR: hi‖lo xor-folded is ((s3^s1) << 32) | (s2^s0).
        x = s3 ^ s1
        x <<= _SHIFT32
        x |= s2 ^ s0
        rot = s3 >> _U64(26)
        word = x << ((_U64(64) - rot) & _U64(63))
        word |= x >> rot
        out.append(word)
    return state, np.stack(out, axis=1) if out else np.empty((len(state[0]), 0), _U64)


def doubles_from_words(words: np.ndarray) -> np.ndarray:
    """``Generator.random()`` for every word: ``(w >> 11)·2**-53`` exactly."""
    return (words >> _U64(11)).astype(np.float64) * _TO_DOUBLE


def lemire32_threshold(n: int) -> int:
    """Rejection threshold of the buffered 32-bit Lemire step for range ``n``.

    A 32-bit half-word ``u`` is rejected iff ``(u·n) mod 2**32`` falls
    below this (≈ ``n / 2**32`` probability — a few in a billion for the
    option counts HITs use).
    """
    if n <= 1:
        return 0
    return ((1 << 32) - n) % n


def lemire32(halves: np.ndarray, n: "int | np.ndarray") -> tuple[np.ndarray, np.ndarray]:
    """The exact ``Generator.integers(n)`` value for 32-bit halves.

    ``n`` may be a scalar or a per-element array (each < 2**32).  Returns
    ``(values, rejected)``: where ``rejected`` is True the scalar path
    would have drawn another half-word — callers fall back to scalar
    replay for those lanes instead of replicating the (astronomically
    rare) rejection loop.
    """
    n64 = np.asarray(n, dtype=np.uint64)
    m = halves.astype(np.uint64) * n64
    values = m >> _U64(32)
    threshold = ((_U64(1 << 32) - n64) % np.maximum(n64, _U64(1))).astype(np.uint64)
    rejected = (m & _MASK32) < threshold
    return values, rejected


def standard_normal_common(words: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The ziggurat common path of ``Generator.standard_normal`` per word.

    NumPy's ziggurat consumes one 64-bit word per draw on its common path
    (~98.6 % of draws): 8 bits pick a layer, 1 bit the sign, 52 bits the
    abscissa; when the abscissa lands under the layer's acceptance bound
    (``KI_DOUBLE``), the value is exactly ``±rabs·WI_DOUBLE[idx]``.
    Returns ``(values, common)``; where ``common`` is False the scalar
    path would enter the tail/wedge rejection loop (variable word
    consumption) — callers replay those lanes via a state transplant.
    """
    from repro.util._ziggurat import KI_DOUBLE, WI_DOUBLE

    idx = (words & _U64(0xFF)).astype(np.intp)
    rabs = (words >> _U64(9)) & _U64((1 << 52) - 1)
    common = rabs < KI_DOUBLE[idx]
    values = rabs.astype(np.float64) * WI_DOUBLE[idx]
    return np.where((words >> _U64(8)) & _U64(1), -values, values), common


def seeds_from_digests(blob: bytes) -> np.ndarray:
    """``derive_seed``'s int extraction for concatenated SHA-256 digests.

    Each 32-byte digest yields ``int.from_bytes(digest[:8], "big") % 2**63``
    — the top 8 bytes big-endian with the sign bit cleared (the seed space
    is a power of two, so the modulo is a mask).
    """
    return np.frombuffer(blob, dtype=">u8")[::4] & _U64(0x7FFFFFFFFFFFFFFF)


def state_ints(
    state: list[np.ndarray], inc: list[np.ndarray], lane: int
) -> tuple[int, int]:
    """One lane's 128-bit ``(state, inc)`` as Python ints."""
    s = (
        int(state[0][lane])
        | (int(state[1][lane]) << 32)
        | (int(state[2][lane]) << 64)
        | (int(state[3][lane]) << 96)
    )
    i = (
        int(inc[0][lane])
        | (int(inc[1][lane]) << 32)
        | (int(inc[2][lane]) << 64)
        | (int(inc[3][lane]) << 96)
    )
    return s, i


def pack_states(state: list[np.ndarray], inc: list[np.ndarray]) -> bytes:
    """Pack every lane's ``(state, inc)`` into 32 little-endian bytes each.

    One ``tobytes`` for the whole batch beats per-lane limb-to-int
    arithmetic; unpack a lane with :func:`state_dict_at`.
    """
    buf = np.empty((len(state[0]), 8), dtype="<u4")
    for i in range(4):
        buf[:, i] = state[i]
        buf[:, 4 + i] = inc[i]
    return buf.tobytes()


def state_dict_at(blob: bytes, lane: int) -> dict:
    """The transplant dict (see :func:`pcg64_state_dict`) for one packed lane."""
    off = lane * 32
    return {
        "bit_generator": "PCG64",
        "state": {
            "state": int.from_bytes(blob[off : off + 16], "little"),
            "inc": int.from_bytes(blob[off + 16 : off + 32], "little"),
        },
        "has_uint32": 0,
        "uinteger": 0,
    }


def pcg64_state_dict(state: int, inc: int) -> dict:
    """The ``bit_generator.state`` dict re-pointing a PCG64 at a substream.

    Setting this on a shared ``PCG64`` instance reproduces
    ``np.random.default_rng(seed)`` exactly (empty 32-bit buffer included)
    without paying generator construction.
    """
    return {
        "bit_generator": "PCG64",
        "state": {"state": state, "inc": inc},
        "has_uint32": 0,
        "uinteger": 0,
    }
