"""Deterministic random-number management for all CDAS components.

Every stochastic piece of the reproduction (worker pools, tweet generators,
latency models, experiment drivers) draws from a :class:`numpy.random.Generator`
obtained through this module.  Two rules keep experiments reproducible and
composable:

1. *Explicit seeds everywhere.*  No module ever touches global NumPy state.
2. *Named substreams.*  A component derives child generators from its parent
   seed plus a string label, so adding a new consumer of randomness never
   shifts the stream seen by existing consumers.  This mirrors the
   "independent substream" discipline used in simulation codebases.

Example
-------
>>> root = spawn(2012)
>>> pool_rng = substream(2012, "worker-pool")
>>> tweet_rng = substream(2012, "tweets")
>>> pool_rng.random() != tweet_rng.random()
True
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["spawn", "substream", "derive_seed", "permutation_of"]

#: Upper bound (exclusive) for derived integer seeds.  ``numpy`` accepts
#: arbitrarily large ints, but keeping seeds below 2**63 makes them printable
#: and storable in any integer column.
_SEED_SPACE = 2**63


def spawn(seed: int) -> np.random.Generator:
    """Return a fresh generator for ``seed``.

    Parameters
    ----------
    seed:
        Any non-negative integer.  The same seed always yields an identical
        stream on every platform supported by NumPy's PCG64.
    """
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    return np.random.default_rng(seed)


def derive_seed(seed: int, label: str) -> int:
    """Derive a child seed from ``(seed, label)``.

    The derivation hashes the pair with SHA-256, which makes the child seeds
    statistically independent of each other and of the parent for all
    practical purposes, and — unlike ``seed + i`` schemes — immune to
    accidental stream collisions between components.
    """
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


def substream(seed: int, label: str) -> np.random.Generator:
    """Return the generator for the named substream of ``seed``.

    ``substream(s, label)`` is deterministic in both arguments, and distinct
    labels give independent streams.  All CDAS components use this to carve
    their private randomness out of one experiment-level seed.
    """
    return spawn(derive_seed(seed, label))


def permutation_of(seed: int, label: str, n: int) -> list[int]:
    """Return a deterministic permutation of ``range(n)`` for the substream.

    Convenience used by arrival-order experiments (Figure 11), where the same
    answer set must be replayed under several distinct but reproducible
    orders.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return list(substream(seed, label).permutation(n))
