"""Numeric primitives shared by the CDAS models.

The prediction model (paper §3) needs binomial majority tails and the
Chernoff lower bound of Theorem 2; the verification model (paper §4) needs
overflow-safe softmax over confidence sums and harmonic numbers for the
Theorem 5 domain-size bounds.  Everything here is pure computation with no
randomness, so it is the natural target for exhaustive property tests.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = [
    "majority_threshold",
    "binomial_pmf",
    "binomial_tail",
    "majority_probability",
    "chernoff_majority_lower_bound",
    "logsumexp",
    "softmax_from_logs",
    "harmonic_number",
    "clamp_probability",
    "mean",
]

#: Probabilities are clamped into ``[PROB_EPS, 1 - PROB_EPS]`` before any
#: logit transform so that a worker recorded at accuracy 0.0 or 1.0 (which
#: happens with tiny gold samples) does not produce infinite confidences.
PROB_EPS = 1e-9


def clamp_probability(p: float, eps: float = PROB_EPS) -> float:
    """Clamp ``p`` into the open interval ``(0, 1)`` by ``eps``.

    Raises
    ------
    ValueError
        If ``p`` is outside ``[0, 1]`` by more than floating-point slack
        (a sign of a bug upstream rather than of numerical noise).
    """
    if not -1e-12 <= p <= 1.0 + 1e-12:
        raise ValueError(f"probability out of range: {p!r}")
    return min(max(p, eps), 1.0 - eps)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty iterable.

    Defined here (rather than using ``statistics.mean``) so every caller gets
    the same float semantics and a uniform error for empty input.
    """
    total = 0.0
    count = 0
    for v in values:
        total += v
        count += 1
    if count == 0:
        raise ValueError("mean of empty sequence")
    return total / count


def majority_threshold(n: int) -> int:
    """Number of agreeing workers needed for a strict majority of ``n``.

    The paper writes the threshold as ``⌈n/2⌉`` with ``n`` odd, i.e.
    ``(n+1)//2``.  For even ``n`` (which CDAS avoids but the library
    tolerates) this returns ``n//2 + 1``, the smallest count strictly above
    half.
    """
    if n <= 0:
        raise ValueError(f"worker count must be positive, got {n}")
    return n // 2 + 1


def binomial_pmf(n: int, k: int, p: float) -> float:
    """``P[Binomial(n, p) = k]`` computed in log space for stability."""
    if not 0 <= k <= n:
        return 0.0
    p = clamp_probability(p)
    log_pmf = (
        math.lgamma(n + 1)
        - math.lgamma(k + 1)
        - math.lgamma(n - k + 1)
        + k * math.log(p)
        + (n - k) * math.log(1.0 - p)
    )
    return math.exp(log_pmf)


def binomial_tail(n: int, k: int, p: float) -> float:
    """``P[Binomial(n, p) >= k]``.

    Uses the paper's Algorithm-3 pmf recurrence
    ``C(n, k-1)/C(n, k) = k/(n-k+1)`` but anchors the walk at the largest
    term inside ``[k, n]`` (the distribution mode) computed in log space,
    so the sum neither under- nor overflows for large ``n`` — the naive
    Algorithm 3 starts from ``p**n``, which is 0.0 in doubles already at
    ``n ≈ 700``.
    """
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    p = clamp_probability(p)
    q = 1.0 - p
    mode = min(max(k, int((n + 1) * p)), n)
    log_anchor = (
        math.lgamma(n + 1)
        - math.lgamma(mode + 1)
        - math.lgamma(n - mode + 1)
        + mode * math.log(p)
        + (n - mode) * math.log(q)
    )
    # Sum pmf ratios relative to the anchor term; ratios are ≤ 1 and decay
    # geometrically away from the mode, so plain accumulation is stable.
    total = 1.0
    ratio = 1.0
    for i in range(mode, k, -1):  # walk down to k
        ratio *= (q * i) / (p * (n - i + 1))
        total += ratio
    ratio = 1.0
    for i in range(mode, n):  # walk up to n
        ratio *= (p * (n - i)) / (q * (i + 1))
        total += ratio
    return min(math.exp(log_anchor) * total, 1.0)


def majority_probability(n: int, mu: float) -> float:
    """Theorem 1: ``E[P_{⌈n/2⌉}]`` for ``n`` i.i.d. workers of mean accuracy ``mu``.

    This is the probability that at least ``⌈n/2⌉`` of ``n`` independent
    workers answer correctly, i.e. the voting strategy succeeds.
    """
    return binomial_tail(n, majority_threshold(n), mu)


def chernoff_majority_lower_bound(n: int, mu: float) -> float:
    """Theorem 2: ``E[P] ≥ 1 - exp(-2n(μ - ½)²)``.

    Only meaningful for ``mu > 0.5``; for ``mu ≤ 0.5`` the bound is vacuous
    (non-positive) and the function returns 0.
    """
    if n <= 0:
        raise ValueError(f"worker count must be positive, got {n}")
    edge = mu - 0.5
    if edge <= 0.0:
        return 0.0
    return 1.0 - math.exp(-2.0 * n * edge * edge)


def logsumexp(log_terms: Sequence[float]) -> float:
    """Stable ``log(Σ exp(x_i))`` for a non-empty sequence."""
    if len(log_terms) == 0:
        raise ValueError("logsumexp of empty sequence")
    m = max(log_terms)
    if m == float("-inf"):
        return m
    return m + math.log(sum(math.exp(x - m) for x in log_terms))


def softmax_from_logs(log_terms: Sequence[float]) -> list[float]:
    """Normalised ``exp(x_i) / Σ exp(x_j)`` computed without overflow.

    This is exactly Equation 4 of the paper once each ``x_i`` is the summed
    confidence of answer ``r_i``: the answer confidences are a softmax over
    per-answer confidence totals.
    """
    denom = logsumexp(log_terms)
    return [math.exp(x - denom) for x in log_terms]


def harmonic_number(k: int) -> float:
    """``H_k = Σ_{i=1..k} 1/i`` (``H_0 = 0``), used by Theorem 5's Lemma 1."""
    if k < 0:
        raise ValueError(f"harmonic number of negative k: {k}")
    return sum(1.0 / i for i in range(1, k + 1))
