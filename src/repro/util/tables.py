"""Plain-text rendering of experiment output.

Every experiment module prints the series the paper plots as an aligned
ASCII table so the harness output can be diffed, logged, and pasted into
EXPERIMENTS.md.  Rendering is deliberately dependency-free.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "format_series", "format_percent", "render_rows"]


def format_percent(value: float, digits: int = 1) -> str:
    """Render ``0.153`` as ``"15.3%"``."""
    return f"{100.0 * value:.{digits}f}%"


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` with column alignment.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ------
    1  2.5000
    """
    cells = [[_stringify(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in cells
    ]
    return "\n".join([header_line.rstrip(), rule, *[b.rstrip() for b in body]])


def render_rows(rows: Sequence[Mapping[str, object]]) -> str:
    """Render a list of homogeneous dicts (the experiment-row format).

    The column order follows the first row's insertion order, matching how
    experiment modules construct their rows.
    """
    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    table_rows = [[row.get(h, "") for h in headers] for row in rows]
    return format_table(headers, table_rows)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object], x_label: str = "x"
) -> str:
    """Render one named (x, y) series the way the paper's figures list them."""
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} xs vs {len(ys)} ys")
    rows = [[x, y] for x, y in zip(xs, ys)]
    return f"series: {name}\n" + format_table([x_label, name], rows)
