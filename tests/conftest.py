"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.amt.pool import PoolConfig, WorkerPool
from repro.core.domain import AnswerDomain

# Derandomise hypothesis: a reproduction repo's suite must not flake on
# example generation; failures stay reproducible run to run.
settings.register_profile("repro", derandomize=True)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def small_pool() -> WorkerPool:
    """A 120-worker pool shared by read-only tests (built once)."""
    return WorkerPool.from_config(PoolConfig(size=120), seed=7)


@pytest.fixture()
def journal_path(tmp_path):
    """A journal path inside pytest's tmp dir, so journal/snapshot files
    (which `.gitignore` also excludes) never touch the worktree."""
    return tmp_path / "svc.journal.jsonl"


@pytest.fixture()
def tsa_domain() -> AnswerDomain:
    return AnswerDomain.closed(("positive", "neutral", "negative"))


@pytest.fixture()
def pos_neu_neg() -> AnswerDomain:
    return AnswerDomain.closed(("pos", "neu", "neg"))
