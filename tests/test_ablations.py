"""Tests for the ablation studies (downscaled)."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_aggregator_comparison,
    run_colluder_ablation,
    run_domain_pruning_ablation,
    run_spammer_ablation,
)

SEED = 2012


class TestSpammerAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_spammer_ablation(
            SEED, review_count=60, fractions=(0.0, 0.2, 0.4)
        )

    def test_verification_most_robust_at_high_spam(self, result):
        worst = result.rows[-1]
        assert worst["verification"] >= worst["majority_voting"] - 0.02
        assert worst["verification"] >= worst["half_voting"]

    def test_voting_degrades_with_spam(self, result):
        assert result.rows[-1]["half_voting"] < result.rows[0]["half_voting"]


class TestColluderAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_colluder_ablation(
            SEED, review_count=60, fractions=(0.0, 0.2, 0.3)
        )

    def test_voting_collapses_under_collusion(self, result):
        first, last = result.rows[0], result.rows[-1]
        assert last["majority_voting"] < first["majority_voting"] - 0.15

    def test_verification_survives_collusion(self, result):
        # Gold-sampling estimates colluders near zero accuracy, so their
        # coordinated vote cannot outweigh honest workers.
        last = result.rows[-1]
        assert last["verification"] > last["majority_voting"] + 0.2


class TestDomainPruningAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_domain_pruning_ablation(SEED, trials=150)

    def test_same_accuracy_both_policies(self, result):
        by_policy = {row["m_policy"]: row for row in result.rows}
        assert abs(
            by_policy["theorem5"]["accuracy"] - by_policy["full-domain"]["accuracy"]
        ) < 0.05

    def test_theorem5_better_calibrated(self, result):
        by_policy = {row["m_policy"]: row for row in result.rows}
        assert (
            by_policy["theorem5"]["calibration_gap"]
            < by_policy["full-domain"]["calibration_gap"]
        )

    def test_naive_m_overconfident(self, result):
        by_policy = {row["m_policy"]: row for row in result.rows}
        naive = by_policy["full-domain"]
        assert naive["mean_final_confidence"] > naive["accuracy"] + 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            run_domain_pruning_ablation(SEED, domain_size=3)


class TestAggregatorComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_aggregator_comparison(
            SEED, review_count=60, worker_counts=(5, 9)
        )

    def test_cdas_beats_majority(self, result):
        for row in result.rows:
            assert row["cdas_verification"] >= row["majority_voting"] - 0.02

    def test_all_columns_present(self, result):
        for row in result.rows:
            assert {"workers", "majority_voting", "dawid_skene",
                    "cdas_verification"} <= set(row)

    def test_everything_improves_with_workers(self, result):
        first, last = result.rows[0], result.rows[-1]
        assert last["cdas_verification"] >= first["cdas_verification"] - 0.02
        assert last["dawid_skene"] >= first["dawid_skene"] - 0.02
