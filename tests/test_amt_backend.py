"""Tests for the market backend protocol and the global event merge."""

from __future__ import annotations

import pytest

from repro.amt.backend import EventPump, HITHandle, MarketBackend, SubmissionEvent
from repro.amt.hit import HIT, Question
from repro.amt.market import SimulatedMarket


def _hit(hit_id: str, assignments: int = 5, questions: int = 3) -> HIT:
    options = ("pos", "neu", "neg")
    return HIT(
        hit_id=hit_id,
        questions=tuple(
            Question(
                question_id=f"{hit_id}:q{i}", options=options, truth=options[i % 3]
            )
            for i in range(questions)
        ),
        assignments=assignments,
    )


@pytest.fixture()
def market(small_pool) -> SimulatedMarket:
    return SimulatedMarket(small_pool, seed=11)


class TestProtocolConformance:
    def test_simulated_market_is_a_backend(self, market):
        assert isinstance(market, MarketBackend)

    def test_published_hit_is_a_handle(self, market):
        handle = market.publish(_hit("h0"))
        assert isinstance(handle, HITHandle)


class TestPeekTime:
    def test_peek_matches_next_submission(self, market):
        handle = market.publish(_hit("h0"))
        peeked = handle.peek_time()
        assignment = handle.next_submission()
        assert peeked == assignment.submit_time

    def test_peek_is_free(self, market):
        handle = market.publish(_hit("h0"))
        for _ in range(10):
            handle.peek_time()
        assert market.ledger.charged_assignments == 0
        assert handle.collected == 0

    def test_peek_none_when_drained(self, market):
        handle = market.publish(_hit("h0", assignments=2))
        handle.collect_all()
        assert handle.peek_time() is None

    def test_peek_none_after_cancel(self, market):
        handle = market.publish(_hit("h0"))
        handle.next_submission()
        handle.cancel()
        assert handle.peek_time() is None


class TestEventPump:
    def test_single_handle_replays_arrival_order(self, market):
        handle = market.publish(_hit("h0", assignments=6))
        expected = [a.submit_time for a in handle._assignments]
        pump = EventPump()
        pump.add(handle)
        events = list(pump.drain())
        assert [e.time for e in events] == expected
        assert [e.sequence for e in events] == list(range(6))
        assert all(e.hit_id == "h0" for e in events)

    def test_merges_two_hits_in_global_time_order(self, market):
        h0 = market.publish(_hit("h0", assignments=6))
        h1 = market.publish(_hit("h1", assignments=6))
        pump = EventPump()
        pump.add(h0)
        pump.add(h1)
        events = list(pump.drain())
        assert len(events) == 12
        assert [e.time for e in events] == sorted(e.time for e in events)
        # Both HITs' submissions interleave rather than running back to back.
        first_six = {e.hit_id for e in events[:6]}
        assert first_six == {"h0", "h1"}

    def test_published_at_offsets_shift_global_order(self, market):
        h0 = market.publish(_hit("h0", assignments=3))
        h1 = market.publish(_hit("h1", assignments=3))
        pump = EventPump()
        pump.add(h0, published_at=0.0)
        # Published far in the future: all of h1 must come after all of h0.
        pump.add(h1, published_at=1e9)
        events = list(pump.drain())
        assert [e.hit_id for e in events] == ["h0"] * 3 + ["h1"] * 3

    def test_cancelled_handle_is_skipped(self, market):
        h0 = market.publish(_hit("h0", assignments=4))
        h1 = market.publish(_hit("h1", assignments=4))
        pump = EventPump()
        pump.add(h0)
        pump.add(h1)
        first = pump.next_event()
        assert first is not None
        h1.cancel()
        rest = list(pump.drain())
        assert all(e.hit_id == "h0" for e in rest)
        remaining_h0 = 4 - (1 if first.hit_id == "h0" else 0)
        cancelled_h1 = 1 if first.hit_id == "h1" else 0
        assert len(rest) == remaining_h0
        assert h1.collected == cancelled_h1

    def test_charges_exactly_per_pop(self, market):
        h0 = market.publish(_hit("h0", assignments=5))
        pump = EventPump()
        pump.add(h0)
        pump.next_event()
        pump.next_event()
        assert market.ledger.charged_assignments == 2

    def test_external_pull_requeues_head(self, market):
        h0 = market.publish(_hit("h0", assignments=4))
        pump = EventPump()
        pump.add(h0)
        # Someone drains one submission behind the pump's back.
        stolen = h0.next_submission()
        events = list(pump.drain())
        assert len(events) == 3
        assert stolen.worker_id not in {e.assignment.worker_id for e in events}

    def test_deterministic_across_runs(self, small_pool):
        def run():
            market = SimulatedMarket(small_pool, seed=13)
            pump = EventPump()
            for k in range(3):
                pump.add(market.publish(_hit(f"h{k}", assignments=5)))
            return [(e.hit_id, e.assignment.worker_id, e.time) for e in pump.drain()]

        assert run() == run()

    def test_empty_pump_is_dry(self):
        pump = EventPump()
        assert pump.next_event() is None
        assert not pump.pending

    def test_dormant_live_handle_is_parked_and_repolled(self):
        """A handle with nothing pending *yet* (live backend) is not dropped."""
        from repro.amt.hit import Assignment

        hit = _hit("h0", assignments=2, questions=1)

        class LateHandle:
            """Submissions materialise only after deliver() — like live AMT."""

            def __init__(self) -> None:
                self.hit = hit
                self._queue: list[Assignment] = []
                self._collected = 0
                self._cancelled = False

            def deliver(self, worker_id: str, when: float) -> None:
                self._queue.append(
                    Assignment(
                        hit_id=hit.hit_id,
                        worker_id=worker_id,
                        answers={q.question_id: q.truth for q in hit.questions},
                        submit_time=when,
                    )
                )

            @property
            def outstanding(self) -> int:
                return 0 if self._cancelled else hit.assignments - self._collected

            @property
            def done(self) -> bool:
                return self._cancelled or self._collected >= hit.assignments

            def peek_time(self) -> float | None:
                if self.done or not self._queue:
                    return None
                return self._queue[0].submit_time

            def next_submission(self) -> Assignment | None:
                if self.done or not self._queue:
                    return None
                self._collected += 1
                return self._queue.pop(0)

            def cancel(self) -> int:
                avoided = self.outstanding
                self._cancelled = True
                return avoided

            def worker_profile(self, worker_id: str):
                raise KeyError(worker_id)

        handle = LateHandle()
        assert isinstance(handle, HITHandle)
        pump = EventPump()
        pump.add(handle)
        # Nothing pending yet: dry pop, but the handle stays registered.
        assert pump.next_event() is None
        assert pump.pending
        handle.deliver("w1", 5.0)
        event = pump.next_event()
        assert event is not None and event.assignment.worker_id == "w1"
        assert pump.next_event() is None and pump.pending  # dormant again
        handle.deliver("w2", 9.0)
        assert pump.next_event().assignment.worker_id == "w2"
        assert pump.next_event() is None
        assert not pump.pending  # both assignments collected → done

    def test_live_handle_drained_externally_is_parked_not_evicted(self):
        """A heap-queued live handle whose head is stolen externally must be
        re-parked for re-polling, not dropped forever."""
        from repro.amt.hit import Assignment

        hit = _hit("h0", assignments=3, questions=1)

        class LiveHandle:
            def __init__(self) -> None:
                self.hit = hit
                self._queue: list[Assignment] = []
                self._collected = 0

            def deliver(self, worker_id: str, when: float) -> None:
                self._queue.append(
                    Assignment(
                        hit_id=hit.hit_id,
                        worker_id=worker_id,
                        answers={q.question_id: q.truth for q in hit.questions},
                        submit_time=when,
                    )
                )

            @property
            def outstanding(self) -> int:
                return hit.assignments - self._collected

            @property
            def done(self) -> bool:
                return self._collected >= hit.assignments

            def peek_time(self) -> float | None:
                if self.done or not self._queue:
                    return None
                return self._queue[0].submit_time

            def next_submission(self) -> Assignment | None:
                if self.done or not self._queue:
                    return None
                self._collected += 1
                return self._queue.pop(0)

            def cancel(self) -> int:
                return 0

            def worker_profile(self, worker_id: str):
                raise KeyError(worker_id)

        handle = LiveHandle()
        pump = EventPump()
        pump.add(handle)
        handle.deliver("w1", 1.0)
        handle.deliver("w2", 2.0)
        # Collect w1; the pump re-queues w2's head onto the heap.
        assert pump.next_event().assignment.worker_id == "w1"
        # w2 is stolen behind the pump's back: heap entry goes stale while
        # the handle is still live (1 of 3 outstanding, queue empty).
        assert handle.next_submission().worker_id == "w2"
        assert pump.next_event() is None
        assert pump.pending  # parked, not evicted
        handle.deliver("w3", 7.0)
        assert pump.next_event().assignment.worker_id == "w3"
        assert not pump.pending

    def test_event_is_frozen(self, market):
        handle = market.publish(_hit("h0"))
        pump = EventPump()
        pump.add(handle)
        event = pump.next_event()
        assert isinstance(event, SubmissionEvent)
        with pytest.raises(AttributeError):
            event.time = 0.0


class TestArrivalEta:
    """The wait hook the async driver sleeps on (DESIGN.md §8)."""

    def test_helper_is_lenient(self, market):
        from repro.amt.backend import arrival_eta

        handle = market.publish(_hit("h0"))
        assert arrival_eta(handle) == 0.0  # pre-generated: pending now

        class NoEta:
            pass

        assert arrival_eta(NoEta()) is None  # optional method absent

        class NegativeEta:
            def next_arrival_eta(self):
                return -3.0

        assert arrival_eta(NegativeEta()) == 0.0  # clamped

    def test_simulated_handles_never_wait(self, market):
        handle = market.publish(_hit("h0", assignments=2))
        assert handle.next_arrival_eta() == 0.0
        handle.collect_all()
        assert handle.next_arrival_eta() is None
        assert market.next_arrival_eta() is None  # all drained

    def test_pump_eta_zero_when_poppable(self, market):
        pump = EventPump()
        pump.add(market.publish(_hit("h0")))
        assert pump.next_arrival_eta() == 0.0

    def test_pump_eta_none_when_drained(self, market):
        pump = EventPump()
        pump.add(market.publish(_hit("h0", assignments=1)))
        for _ in pump.drain():
            pass
        assert pump.next_arrival_eta() is None

    def test_pump_eta_from_dormant_slow_handles(self, market):
        from repro.amt.slow import SlowBackend

        now = [100.0]
        slow = SlowBackend(market, delay=5.0, clock=lambda: now[0])
        pump = EventPump()
        pump.add(slow.publish(_hit("h0")))
        now[0] += 2.0
        pump.add(slow.publish(_hit("h1")))
        # Nothing released yet: dormant, ETA = earliest release (h0 in 3s).
        assert pump.next_event() is None
        assert pump.next_arrival_eta() == pytest.approx(3.0)
        now[0] += 3.0
        assert pump.next_arrival_eta() == 0.0  # h0 released
        assert pump.next_event() is not None


class TestSlowBackend:
    def test_dormant_until_release_then_delegates(self, market):
        from repro.amt.slow import SlowBackend

        now = [0.0]
        slow = SlowBackend(market, delay=1.0, clock=lambda: now[0])
        reference = SimulatedMarket(market.pool, seed=11)
        handle = slow.publish(_hit("h0", assignments=2))
        expected = reference.publish(_hit("h0", assignments=2))
        # Before release: looks like a live HIT with nothing pending yet.
        assert handle.peek_time() is None and not handle.done
        assert handle.next_submission() is None
        assert handle.next_arrival_eta() == pytest.approx(1.0)
        # After release: identical content to the undelayed backend.
        now[0] = 1.0
        assert handle.peek_time() == expected.peek_time()
        first = handle.next_submission()
        assert first == expected.next_submission()
        # Collecting re-arms the delay.
        assert handle.peek_time() is None
        assert handle.next_arrival_eta() == pytest.approx(1.0)
        now[0] = 2.0
        assert handle.next_submission() == expected.next_submission()
        assert handle.done and handle.next_arrival_eta() is None

    def test_is_a_backend_with_shared_ledger(self, market):
        from repro.amt.slow import SlowBackend

        slow = SlowBackend(market, delay=0.0)
        assert isinstance(slow, MarketBackend)
        assert slow.ledger is market.ledger
        handle = slow.publish(_hit("h0", assignments=1))
        assert isinstance(handle, HITHandle)
        handle.next_submission()
        assert market.ledger.cost_of("h0") > 0.0

    def test_cancel_passes_through(self, market):
        from repro.amt.slow import SlowBackend

        slow = SlowBackend(market, delay=10.0)
        handle = slow.publish(_hit("h0", assignments=3))
        assert handle.outstanding == 3
        assert handle.cancel() == 3
        assert handle.done
        assert handle.next_arrival_eta() is None

    def test_negative_delay_rejected(self, market):
        from repro.amt.slow import SlowBackend

        with pytest.raises(ValueError):
            SlowBackend(market, delay=-0.1)
