"""Tests for the HIT data model."""

from __future__ import annotations

import pytest

from repro.amt.hit import HIT, Assignment, Question, validate_assignment


def _question(qid: str = "q1", **kwargs) -> Question:
    defaults = dict(options=("a", "b"), truth="a")
    defaults.update(kwargs)
    return Question(question_id=qid, **defaults)


class TestQuestion:
    def test_valid(self):
        q = _question(difficulty=0.4, reason_keywords=("x",))
        assert q.truth == "a"

    def test_truth_must_be_option(self):
        with pytest.raises(ValueError, match="not among"):
            _question(truth="z")

    def test_needs_two_options(self):
        with pytest.raises(ValueError, match="≥ 2 options"):
            Question(question_id="q", options=("a",), truth="a")

    def test_duplicate_options(self):
        with pytest.raises(ValueError, match="duplicate"):
            Question(question_id="q", options=("a", "a"), truth="a")

    def test_difficulty_range_signed(self):
        assert _question(difficulty=-0.5).difficulty == -0.5
        with pytest.raises(ValueError):
            _question(difficulty=1.5)
        with pytest.raises(ValueError):
            _question(difficulty=-1.5)


class TestHIT:
    def test_gold_real_split(self):
        gold = _question("g1", is_gold=True)
        real = _question("r1")
        hit = HIT(hit_id="h", questions=(gold, real), assignments=3)
        assert hit.gold_questions == (gold,)
        assert hit.real_questions == (real,)

    def test_question_lookup(self):
        hit = HIT(hit_id="h", questions=(_question("q1"),), assignments=1)
        assert hit.question("q1").question_id == "q1"
        with pytest.raises(KeyError):
            hit.question("missing")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no questions"):
            HIT(hit_id="h", questions=(), assignments=1)

    def test_duplicate_question_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            HIT(hit_id="h", questions=(_question("q"), _question("q")), assignments=1)

    def test_nonpositive_assignments_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            HIT(hit_id="h", questions=(_question(),), assignments=0)


class TestAssignment:
    def test_answer_lookup(self):
        a = Assignment(hit_id="h", worker_id="w", answers={"q1": "a"})
        assert a.answer_for("q1") == "a"
        assert a.answer_for("q2") is None

    def test_validate_accepts_good_assignment(self):
        hit = HIT(hit_id="h", questions=(_question("q1"),), assignments=1)
        validate_assignment(
            hit, Assignment(hit_id="h", worker_id="w", answers={"q1": "b"})
        )

    def test_validate_rejects_foreign_option(self):
        hit = HIT(hit_id="h", questions=(_question("q1"),), assignments=1)
        with pytest.raises(ValueError, match="outside options"):
            validate_assignment(
                hit, Assignment(hit_id="h", worker_id="w", answers={"q1": "zzz"})
            )

    def test_validate_rejects_wrong_hit(self):
        hit = HIT(hit_id="h", questions=(_question("q1"),), assignments=1)
        with pytest.raises(ValueError, match="validated against"):
            validate_assignment(
                hit, Assignment(hit_id="other", worker_id="w", answers={})
            )
