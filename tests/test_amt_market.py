"""Tests for the simulated market: publication, arrival order, pricing."""

from __future__ import annotations

import pytest

from repro.amt.hit import HIT, Question
from repro.amt.latency import FixedLatency
from repro.amt.market import SimulatedMarket
from repro.amt.pricing import PriceSchedule


def _hit(hit_id: str = "h1", n: int = 7, questions: int = 3) -> HIT:
    qs = tuple(
        Question(
            question_id=f"q{i}",
            options=("a", "b", "c"),
            truth="a",
            reason_keywords=("r1", "r2"),
        )
        for i in range(questions)
    )
    return HIT(hit_id=hit_id, questions=qs, assignments=n)


@pytest.fixture()
def market(small_pool) -> SimulatedMarket:
    return SimulatedMarket(small_pool, seed=17)


class TestPublish:
    def test_workers_distinct(self, market):
        handle = market.publish(_hit())
        assert len({w.worker_id for w in handle.workers}) == 7

    def test_submissions_time_ordered(self, market):
        handle = market.publish(_hit("h-times", n=15))
        subs = handle.collect_all()
        times = [s.submit_time for s in subs]
        assert times == sorted(times)

    def test_every_question_answered(self, market):
        handle = market.publish(_hit("h-complete"))
        for sub in handle.collect_all():
            assert set(sub.answers) == {"q0", "q1", "q2"}

    def test_answers_within_options(self, market):
        handle = market.publish(_hit("h-opts"))
        for sub in handle.collect_all():
            assert all(a in ("a", "b", "c") for a in sub.answers.values())

    def test_duplicate_hit_id_rejected(self, market):
        market.publish(_hit("dup"))
        with pytest.raises(ValueError, match="already published"):
            market.publish(_hit("dup"))

    def test_determinism_across_markets(self, small_pool):
        m1 = SimulatedMarket(small_pool, seed=5)
        m2 = SimulatedMarket(small_pool, seed=5)
        s1 = m1.publish(_hit("h")).collect_all()
        s2 = m2.publish(_hit("h")).collect_all()
        assert [a.answers for a in s1] == [a.answers for a in s2]
        assert [a.worker_id for a in s1] == [a.worker_id for a in s2]

    def test_different_seeds_differ(self, small_pool):
        s1 = SimulatedMarket(small_pool, seed=5).publish(_hit("h", n=20)).collect_all()
        s2 = SimulatedMarket(small_pool, seed=6).publish(_hit("h", n=20)).collect_all()
        assert [a.worker_id for a in s1] != [a.worker_id for a in s2]

    def test_handle_lookup(self, market):
        handle = market.publish(_hit("h-find"))
        assert market.handle("h-find") is handle
        with pytest.raises(KeyError):
            market.handle("never")


class TestCollectionAndCancel:
    def test_charges_on_collection(self, small_pool):
        market = SimulatedMarket(
            small_pool, seed=1, schedule=PriceSchedule(0.01, 0.005)
        )
        handle = market.publish(_hit("h", n=4))
        assert market.ledger.total_cost == 0.0
        handle.next_submission()
        assert market.ledger.total_cost == pytest.approx(0.015)
        handle.collect_all()
        assert market.ledger.total_cost == pytest.approx(0.06)

    def test_cancel_avoids_outstanding_cost(self, small_pool):
        market = SimulatedMarket(
            small_pool, seed=1, schedule=PriceSchedule(0.01, 0.005)
        )
        handle = market.publish(_hit("h", n=10))
        handle.next_submission()
        handle.next_submission()
        avoided = handle.cancel()
        assert avoided == 8
        assert handle.done
        assert handle.outstanding == 0
        assert market.ledger.total_cost == pytest.approx(0.03)
        assert market.ledger.avoided_cost == pytest.approx(0.12)
        assert handle.next_submission() is None

    def test_exhaustion(self, market):
        handle = market.publish(_hit("h-fin", n=3))
        assert len(handle.collect_all()) == 3
        assert handle.next_submission() is None
        assert handle.done
        assert handle.collected == 3

    def test_cancel_after_completion_is_noop(self, market):
        handle = market.publish(_hit("h-noop", n=3))
        handle.collect_all()
        assert handle.cancel() == 0

    def test_worker_profile_lookup(self, market):
        handle = market.publish(_hit("h-prof", n=3))
        sub = handle.next_submission()
        profile = handle.worker_profile(sub.worker_id)
        assert profile.worker_id == sub.worker_id
        with pytest.raises(KeyError):
            handle.worker_profile("stranger")


class TestFixedLatencyOrdering:
    def test_position_epsilon_breaks_ties(self, small_pool):
        market = SimulatedMarket(small_pool, seed=2, latency=FixedLatency(seconds=1.0))
        handle = market.publish(_hit("h-ties", n=6))
        subs = handle.collect_all()
        # All base latencies equal → arrival order must follow assignment
        # order via the epsilon, with strictly increasing times.
        times = [s.submit_time for s in subs]
        assert times == sorted(times)
        assert len(set(times)) == 6
