"""Tests for worker pool construction and sampling."""

from __future__ import annotations

import pytest

from repro.amt.pool import PoolConfig, WorkerPool
from repro.amt.worker import WorkerProfile
from repro.util.rng import substream


class TestPoolConfig:
    def test_defaults_valid(self):
        PoolConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size": 0},
            {"accuracy_alpha": 0},
            {"accuracy_floor": 0.9, "accuracy_ceiling": 0.8},
            {"spammer_fraction": 1.2},
            {"spammer_fraction": 0.6, "colluder_fraction": 0.6},
            {"colluder_clique_size": 1},
            {"approval_high_fraction": -0.1},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            PoolConfig(**kwargs)


class TestWorkerPoolFromConfig:
    def test_size_and_unique_ids(self):
        pool = WorkerPool.from_config(PoolConfig(size=150), seed=1)
        assert len(pool) == 150
        assert len({p.worker_id for p in pool.profiles}) == 150

    def test_deterministic(self):
        a = WorkerPool.from_config(PoolConfig(size=50), seed=9)
        b = WorkerPool.from_config(PoolConfig(size=50), seed=9)
        assert [p.true_accuracy for p in a.profiles] == [
            p.true_accuracy for p in b.profiles
        ]

    def test_behaviour_mix(self):
        pool = WorkerPool.from_config(
            PoolConfig(size=100, spammer_fraction=0.1, colluder_fraction=0.06),
            seed=2,
        )
        spam = sum(p.behaviour == "spammer" for p in pool.profiles)
        collude = sum(p.behaviour == "colluder" for p in pool.profiles)
        assert spam == 10
        assert collude == 6

    def test_colluders_form_cliques(self):
        pool = WorkerPool.from_config(
            PoolConfig(size=100, colluder_fraction=0.09, colluder_clique_size=3),
            seed=2,
        )
        cliques = {}
        for p in pool.profiles:
            if p.behaviour == "colluder":
                cliques.setdefault(p.clique, 0)
                cliques[p.clique] += 1
        assert all(size <= 3 for size in cliques.values())
        assert len(cliques) == 3

    def test_mean_accuracy_near_beta_mean(self):
        pool = WorkerPool.from_config(
            PoolConfig(size=2000, spammer_fraction=0.0), seed=3
        )
        # Beta(7,3) mean is 0.7.
        assert pool.mean_true_accuracy() == pytest.approx(0.7, abs=0.02)

    def test_approval_rates_skew_high(self):
        pool = WorkerPool.from_config(PoolConfig(size=1000), seed=4)
        high = sum(p.approval_rate >= 0.9 for p in pool.profiles) / 1000
        # Figure 14: the approval histogram piles up at the top.
        assert high > 0.55

    def test_accuracies_clipped(self):
        cfg = PoolConfig(size=500, accuracy_floor=0.3, accuracy_ceiling=0.9)
        pool = WorkerPool.from_config(cfg, seed=5)
        reliable = [p for p in pool.profiles if p.behaviour == "reliable"]
        assert all(0.3 <= p.true_accuracy <= 0.9 for p in reliable)


class TestSampling:
    def test_sample_distinct(self, small_pool):
        rng = substream(1, "s")
        workers = small_pool.sample(30, rng)
        assert len({w.worker_id for w in workers}) == 30

    def test_sample_respects_exclusion(self, small_pool):
        rng = substream(2, "s")
        excluded = frozenset(p.worker_id for p in small_pool.profiles[:10])
        workers = small_pool.sample(20, rng, exclude=excluded)
        assert not ({w.worker_id for w in workers} & excluded)

    def test_oversample_rejected(self, small_pool):
        rng = substream(3, "s")
        with pytest.raises(ValueError, match="eligible"):
            small_pool.sample(len(small_pool) + 1, rng)

    def test_profile_lookup(self, small_pool):
        first = small_pool.profiles[0]
        assert small_pool.profile(first.worker_id) is first
        with pytest.raises(KeyError):
            small_pool.profile("nope")

    def test_duplicate_ids_rejected(self):
        p = WorkerProfile("dup", 0.5, 0.5)
        with pytest.raises(ValueError, match="duplicate"):
            WorkerPool(profiles=[p, p])

    def test_empty_pool_mean_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(profiles=[]).mean_true_accuracy()
