"""Tests for the economic model (§3.1) and the latency models."""

from __future__ import annotations

import pytest

from repro.amt.latency import ExponentialLatency, FixedLatency, LognormalLatency
from repro.amt.pricing import CostLedger, PriceSchedule
from repro.util.rng import substream


class TestPriceSchedule:
    def test_per_assignment(self):
        s = PriceSchedule(worker_reward=0.01, platform_fee=0.005)
        assert s.per_assignment == pytest.approx(0.015)

    def test_hit_cost(self):
        s = PriceSchedule(worker_reward=0.01, platform_fee=0.005)
        assert s.hit_cost(10) == pytest.approx(0.15)

    def test_query_cost_formula(self):
        # (mc+ms) * n * K * w from §3.1.
        s = PriceSchedule(worker_reward=0.01, platform_fee=0.005)
        assert s.query_cost(workers_per_hit=5, items_per_unit=100, window=24) == (
            pytest.approx(0.015 * 5 * 100 * 24)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PriceSchedule(worker_reward=-0.01)
        with pytest.raises(ValueError):
            PriceSchedule().hit_cost(-1)
        with pytest.raises(ValueError):
            PriceSchedule().query_cost(1, -1, 1)


class TestCostLedger:
    def test_charges_accumulate(self):
        ledger = CostLedger(schedule=PriceSchedule(0.01, 0.005))
        ledger.charge("h1", 3)
        ledger.charge("h2", 2)
        assert ledger.charged_assignments == 5
        assert ledger.total_cost == pytest.approx(0.075)
        assert ledger.cost_of("h1") == pytest.approx(0.045)
        assert ledger.cost_of("unknown") == 0.0

    def test_cancellations_tracked_separately(self):
        ledger = CostLedger(schedule=PriceSchedule(0.01, 0.005))
        ledger.charge("h1", 2)
        ledger.cancel("h1", 8)
        assert ledger.total_cost == pytest.approx(0.03)
        assert ledger.avoided_cost == pytest.approx(0.12)
        assert ledger.cancelled_assignments == 8

    def test_validation(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.charge("h", 0)
        with pytest.raises(ValueError):
            ledger.cancel("h", -1)


class TestLatencyModels:
    def test_lognormal_positive_and_deterministic(self):
        model = LognormalLatency(median_seconds=100.0, sigma=0.8)
        a = model.sample(substream(1, "l"))
        b = model.sample(substream(1, "l"))
        assert a == b
        assert a > 0

    def test_lognormal_median_calibration(self):
        model = LognormalLatency(median_seconds=100.0, sigma=0.8)
        rng = substream(2, "l")
        samples = sorted(model.sample(rng) for _ in range(4001))
        assert samples[2000] == pytest.approx(100.0, rel=0.1)

    def test_exponential_mean_calibration(self):
        model = ExponentialLatency(mean_seconds=50.0)
        rng = substream(3, "l")
        mean = sum(model.sample(rng) for _ in range(4000)) / 4000
        assert mean == pytest.approx(50.0, rel=0.1)

    def test_fixed(self):
        model = FixedLatency(seconds=2.5)
        assert model.sample(substream(4, "l")) == 2.5

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: LognormalLatency(median_seconds=0),
            lambda: LognormalLatency(sigma=0),
            lambda: ExponentialLatency(mean_seconds=-1),
            lambda: FixedLatency(seconds=-1),
        ],
    )
    def test_validation(self, factory):
        with pytest.raises(ValueError):
            factory()
