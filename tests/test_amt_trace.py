"""Trace record/replay: round trips, divergence detection, file hygiene.

DESIGN.md §9: the recorder logs every market interaction of a run; the
replay backend serves the recording back through the unchanged engine,
raising a structured :class:`TraceDivergence` the moment the engine's
requests deviate.  These tests pin the contract from both sides — happy
round trips (simulated, slow, async, paced) and every divergence /
corruption class.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.amt.hit import HIT, Question
from repro.amt.market import SimulatedMarket
from repro.amt.pool import PoolConfig, WorkerPool
from repro.amt.slow import SlowBackend
from repro.amt.trace import (
    TraceDivergence,
    TraceError,
    TraceRecorder,
    TraceReplayBackend,
    load_trace,
)
from repro.scenarios import (
    SCENARIOS,
    canonical_json,
    record_scenario,
    replay_scenario,
    run_scenario,
)
from repro.system import CDAS
from repro.tsa.app import movie_query
from repro.tsa.tweets import generate_tweets


def _market(seed: int = 11) -> SimulatedMarket:
    pool = WorkerPool.from_config(PoolConfig(size=80), seed=seed)
    return SimulatedMarket(pool, seed=seed)


def _question(qid: str = "q0") -> Question:
    return Question(
        question_id=qid, options=("yes", "no"), truth="yes", topic="general"
    )


def _hit(hit_id: str = "hit-t", n: int = 3, qid: str = "q0") -> HIT:
    return HIT(hit_id=hit_id, questions=(_question(qid),), assignments=n)


# -- raw recorder / replay ----------------------------------------------------


class TestRecorder:
    def test_records_publish_collect_cancel(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(_market(), path) as recorder:
            handle = recorder.publish(_hit(n=4))
            assert handle.next_submission() is not None
            assert handle.next_submission() is not None
            avoided = handle.cancel()
            assert avoided == 2
        trace = load_trace(path)
        assert len(trace.hits) == 1
        recorded = trace.hits[0]
        assert len(recorded.submissions) == 2
        assert recorded.cancel is not None
        assert recorded.cancel["outstanding"] == 2
        assert recorded.total_assignments == 4
        assert trace.end["submissions"] == 2

    def test_recorder_is_transparent(self, tmp_path):
        """Recording never changes what the inner backend serves."""
        market_a, market_b = _market(3), _market(3)
        plain = market_a.publish(_hit(n=3)).collect_all()
        with TraceRecorder(market_b, tmp_path / "t.jsonl") as recorder:
            handle = recorder.publish(_hit(n=3))
            recorded = []
            while (a := handle.next_submission()) is not None:
                recorded.append(a)
        assert recorded == plain
        assert market_a.ledger.total_cost == market_b.ledger.total_cost

    def test_recorder_delegates_profiles_and_peek(self, tmp_path):
        with TraceRecorder(_market(), tmp_path / "t.jsonl") as recorder:
            handle = recorder.publish(_hit(n=2))
            peek = handle.peek_time()
            assert peek is not None
            assignment = handle.next_submission()
            profile = handle.worker_profile(assignment.worker_id)
            assert profile.worker_id == assignment.worker_id
            assert handle.outstanding == 1
            assert not handle.done

    def test_unclosed_recorder_leaves_truncated_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        recorder = TraceRecorder(_market(), path)  # never closed
        with pytest.raises(TraceError, match="truncated"):
            load_trace(path)
        recorder.close()
        assert load_trace(path).end["publishes"] == 0

    def test_crashed_recording_is_not_sealed(self, tmp_path):
        """A run that raises mid-recording leaves a truncated trace, not
        one stamped complete with an end record."""
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            with TraceRecorder(_market(), path) as recorder:
                recorder.publish(_hit(n=2)).next_submission()
                raise RuntimeError("boom")
        with pytest.raises(TraceError, match="truncated"):
            load_trace(path)

    def test_failed_inner_publish_leaves_no_phantom_record(self, tmp_path):
        """A publish the inner backend rejects is not written to the trace."""
        path = tmp_path / "t.jsonl"
        market = _market()
        with TraceRecorder(market, path) as recorder:
            recorder.publish(_hit(n=2))
            with pytest.raises(ValueError, match="already published"):
                recorder.publish(_hit(n=2))  # duplicate id → inner rejects
        trace = load_trace(path)
        assert len(trace.hits) == 1
        assert trace.end["publishes"] == 1


class TestReplayBackend:
    def _recorded(self, tmp_path, n=4, collect=None, cancel=False):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(_market(), path) as recorder:
            handle = recorder.publish(_hit(n=n))
            for _ in range(n if collect is None else collect):
                handle.next_submission()
            if cancel:
                handle.cancel()
        return path

    def test_replays_assignments_and_ledger(self, tmp_path):
        path = self._recorded(tmp_path, n=3)
        market = _market()
        plain = market.publish(_hit(n=3)).collect_all()
        replay = TraceReplayBackend.load(path)
        handle = replay.publish(_hit(n=3))
        served = []
        while (a := handle.next_submission()) is not None:
            served.append(a)
        assert served == plain
        assert replay.ledger.total_cost == market.ledger.total_cost
        assert replay.verify_complete() == load_trace(path).fingerprint

    def test_empty_trace_drains_immediately(self, tmp_path):
        """A trace with no publishes replays to an immediately idle run."""
        path = tmp_path / "empty.jsonl"
        TraceRecorder(_market(), path).close()
        replay = TraceReplayBackend.load(path)
        assert replay.next_arrival_eta() is None
        assert replay.verify_complete() == load_trace(path).fingerprint
        with pytest.raises(TraceDivergence) as excinfo:
            replay.publish(_hit())
        assert excinfo.value.kind == "extra-publish"

    def test_extra_publish_diverges(self, tmp_path):
        path = self._recorded(tmp_path)
        replay = TraceReplayBackend.load(path)
        replay.publish(_hit(n=4))  # the one recorded publish
        with pytest.raises(TraceDivergence) as excinfo:
            replay.publish(_hit(hit_id="hit-extra"))
        assert excinfo.value.kind == "extra-publish"
        assert "hit-extra" in str(excinfo.value)

    def test_mismatched_batch_diverges(self, tmp_path):
        path = self._recorded(tmp_path)
        replay = TraceReplayBackend.load(path)
        with pytest.raises(TraceDivergence) as excinfo:
            replay.publish(_hit(n=5))  # recorded 4 assignments
        assert excinfo.value.kind == "hit-mismatch"
        assert excinfo.value.hit_id == "hit-t"
        assert "assignments" in str(excinfo.value)

    def test_mismatched_question_diverges_with_detail(self, tmp_path):
        path = self._recorded(tmp_path)
        replay = TraceReplayBackend.load(path)
        other = HIT(
            hit_id="hit-t", questions=(_question("q-other"),), assignments=4
        )
        with pytest.raises(TraceDivergence) as excinfo:
            replay.publish(other)
        assert excinfo.value.kind == "hit-mismatch"
        assert "question 0 differs" in str(excinfo.value)

    def test_premature_cancel_diverges_naming_hit(self, tmp_path):
        """Replay-after-cancel divergence: cancelling earlier than the
        recording did raises a TraceDivergence naming the offending HIT."""
        path = self._recorded(tmp_path, n=4, collect=3, cancel=True)
        replay = TraceReplayBackend.load(path)
        handle = replay.publish(_hit(n=4))
        handle.next_submission()  # 1 of the 3 recorded collections
        with pytest.raises(TraceDivergence) as excinfo:
            handle.cancel()
        assert excinfo.value.kind == "premature-cancel"
        assert excinfo.value.hit_id == "hit-t"
        assert "hit-t" in str(excinfo.value)

    def test_unexpected_cancel_diverges(self, tmp_path):
        path = self._recorded(tmp_path, n=4)  # ran to completion
        replay = TraceReplayBackend.load(path)
        handle = replay.publish(_hit(n=4))
        handle.next_submission()
        with pytest.raises(TraceDivergence) as excinfo:
            handle.cancel()
        assert excinfo.value.kind == "unexpected-cancel"
        assert excinfo.value.hit_id == "hit-t"

    def test_missing_cancel_reported_on_stall(self, tmp_path):
        path = self._recorded(tmp_path, n=4, collect=2, cancel=True)
        replay = TraceReplayBackend.load(path)
        handle = replay.publish(_hit(n=4))
        handle.next_submission()
        handle.next_submission()
        # The recording cancelled here; the "engine" instead keeps waiting.
        assert handle.peek_time() is None
        assert not handle.done
        with pytest.raises(TraceDivergence) as excinfo:
            handle.next_arrival_eta()
        assert excinfo.value.kind == "missing-cancel"
        assert excinfo.value.hit_id == "hit-t"

    def test_replayed_cancel_matches_recording(self, tmp_path):
        path = self._recorded(tmp_path, n=4, collect=2, cancel=True)
        replay = TraceReplayBackend.load(path)
        handle = replay.publish(_hit(n=4))
        handle.next_submission()
        handle.next_submission()
        assert handle.outstanding == 2
        assert handle.cancel() == 2
        assert handle.done
        assert replay.ledger.cancelled_assignments == 2
        assert replay.verify_complete() == load_trace(path).fingerprint

    def test_incomplete_replay_detected(self, tmp_path):
        path = self._recorded(tmp_path, n=4)
        replay = TraceReplayBackend.load(path)
        with pytest.raises(TraceDivergence) as excinfo:
            replay.verify_complete()  # never published anything
        assert excinfo.value.kind == "incomplete-replay"
        handle = replay.publish(_hit(n=4))
        handle.next_submission()
        with pytest.raises(TraceDivergence) as excinfo:
            replay.verify_complete()  # 3 recorded submissions unserved
        assert excinfo.value.kind == "incomplete-replay"

    def test_stalled_replay_behind_unpublished_hit(self, tmp_path):
        """A handle gated behind submissions of a HIT the engine never
        published reports a stalled-replay divergence, not a hot loop."""
        path = tmp_path / "t.jsonl"
        market = _market()
        with TraceRecorder(market, path) as recorder:
            first = recorder.publish(_hit(hit_id="hit-a", n=2, qid="qa"))
            first.next_submission()
            second = recorder.publish(_hit(hit_id="hit-b", n=2, qid="qb"))
            # Interleave: b's submission lands between a's two.
            second.next_submission()
            first.next_submission()
            second.next_submission()
        replay = TraceReplayBackend.load(path)
        handle = replay.publish(_hit(hit_id="hit-a", n=2, qid="qa"))
        assert handle.next_submission() is not None
        # The engine "forgets" to publish hit-b; a's second submission is
        # gated behind b's first, which can never be served.
        assert handle.peek_time() is None
        with pytest.raises(TraceDivergence) as excinfo:
            handle.next_arrival_eta()
        assert excinfo.value.kind == "stalled-replay"
        assert excinfo.value.hit_id == "hit-b"
        assert "hit-a" in str(excinfo.value)

    def test_unknown_worker_profile_rejected(self, tmp_path):
        path = self._recorded(tmp_path, n=2)
        replay = TraceReplayBackend.load(path)
        handle = replay.publish(_hit(n=2))
        with pytest.raises(KeyError, match="never submitted"):
            handle.worker_profile("nobody")


class TestTraceFileHygiene:
    def _valid_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(_market(), path) as recorder:
            recorder.publish(_hit(n=2)).next_submission()
        return path

    def test_truncated_file_is_a_clear_error(self, tmp_path):
        path = self._valid_trace(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the end record
        with pytest.raises(TraceError, match="truncated"):
            load_trace(path)

    def test_corrupt_json_names_the_line(self, tmp_path):
        path = self._valid_trace(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # cut mid-record
        with pytest.raises(TraceError, match="not valid JSON"):
            load_trace(path)

    def test_tampered_record_fails_fingerprint(self, tmp_path):
        path = self._valid_trace(tmp_path)
        path.write_text(path.read_text().replace('"yes"', '"no"', 1))
        with pytest.raises(TraceError, match="fingerprint mismatch"):
            load_trace(path)

    def test_wrong_format_and_version_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type":"header","format":"other","version":1}\n')
        with pytest.raises(TraceError, match="format"):
            load_trace(path)
        path.write_text(
            '{"type":"header","format":"cdas-trace","version":99,'
            '"price":{"worker_reward":0.01,"platform_fee":0.005}}\n'
        )
        with pytest.raises(TraceError, match="version"):
            load_trace(path)

    def test_not_a_trace_at_all(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type":"publish"}\n')
        with pytest.raises(TraceError, match="header"):
            load_trace(path)
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            load_trace(path)

    def test_tampered_expect_record_fails_to_load(self, tmp_path):
        """The pinned outcome is sealed into the end record: tampering
        with it is a load-time TraceError, not a fake divergence."""
        path = tmp_path / "t.jsonl"
        with TraceRecorder(_market(), path) as recorder:
            recorder.publish(_hit(n=2)).next_submission()
            recorder.record_expectation({"answered": 1})
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            record = json.loads(line)
            if record.get("type") == "expect":
                record["outcome"]["answered"] = 99
                lines[i] = json.dumps(
                    record, sort_keys=True, separators=(",", ":")
                )
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="expect record was modified"):
            load_trace(path)

    def test_count_mismatch_detected(self, tmp_path):
        path = self._valid_trace(tmp_path)
        lines = path.read_text().splitlines()
        end = json.loads(lines[-1])
        end["submissions"] += 1
        lines[-1] = json.dumps(end, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="corrupt"):
            load_trace(path)


# -- scenario round trips -----------------------------------------------------


class TestScenarioRoundTrips:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_record_then_replay_bit_for_bit(self, tmp_path, name):
        report = record_scenario(name, tmp_path / "t.jsonl", seed=7)
        replayed = replay_scenario(tmp_path / "t.jsonl")
        assert canonical_json(replayed.outcome) == canonical_json(report.outcome)
        assert replayed.fingerprint == report.fingerprint

    def test_recording_is_transparent_to_the_run(self, tmp_path):
        """The same scenario on a bare market produces the same outcome."""
        bare = run_scenario("mixed-service", _scenario_market(7), 7)
        recorded = record_scenario("mixed-service", tmp_path / "t.jsonl", seed=7)
        assert canonical_json(bare) == canonical_json(recorded.outcome)

    def test_slow_recording_replays_compressed(self, tmp_path):
        """Recorder round-trips a SlowBackend run; compressed replay is
        wall-clock faster and bit-identical."""
        started = time.monotonic()
        report = record_scenario(
            "cancel-mid-flight", tmp_path / "t.jsonl", seed=7, delay=0.01
        )
        slow_wall = time.monotonic() - started
        started = time.monotonic()
        replayed = replay_scenario(tmp_path / "t.jsonl")  # time_scale=0
        fast_wall = time.monotonic() - started
        assert canonical_json(replayed.outcome) == canonical_json(report.outcome)
        assert fast_wall < slow_wall
        # Recorded offsets really carry the waiting: the trace spans at
        # least one delay's worth of wall clock.
        trace = load_trace(tmp_path / "t.jsonl")
        last_at = max(s["at"] for h in trace.hits for s in h.submissions)
        assert last_at >= 0.01

    def test_paced_replay_sleeps_on_recorded_timestamps(self, tmp_path):
        report = record_scenario(
            "cancel-mid-flight", tmp_path / "t.jsonl", seed=7, delay=0.01
        )
        started = time.monotonic()
        replayed = replay_scenario(tmp_path / "t.jsonl", time_scale=0.5)
        paced_wall = time.monotonic() - started
        assert canonical_json(replayed.outcome) == canonical_json(report.outcome)
        assert paced_wall > 0.01  # it really waited

    def test_divergent_outcome_is_reported(self, tmp_path):
        """A trace pinning a different outcome fails the gate loudly.

        Models a trace recorded by an *older engine* whose outcome
        genuinely drifted: the expect record and its sealed digest are
        rewritten consistently (a tampered expect without a matching
        digest refuses to load instead — see TestTraceFileHygiene).
        """
        from repro.amt.trace import _expect_digest

        record_scenario("cancel-mid-flight", tmp_path / "t.jsonl", seed=7)
        path = tmp_path / "t.jsonl"
        lines = path.read_text().splitlines()
        drifted = None
        for i, line in enumerate(lines):
            record = json.loads(line)
            if record.get("type") == "expect":
                record["outcome"]["ledger"]["total_cost"] += 1.0
                drifted = record["outcome"]
                lines[i] = json.dumps(
                    record, sort_keys=True, separators=(",", ":")
                )
            elif record.get("type") == "end":
                assert drifted is not None
                record["expect_digest"] = _expect_digest(drifted)
                lines[i] = json.dumps(
                    record, sort_keys=True, separators=(",", ":")
                )
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceDivergence) as excinfo:
            replay_scenario(path)
        assert excinfo.value.kind == "outcome-mismatch"
        assert "ledger" in str(excinfo.value)


def _scenario_market(seed):
    from repro.scenarios import build_market

    return build_market(seed)


# -- stack wiring -------------------------------------------------------------


class TestServiceBackendWiring:
    def _record_single_query(self, tmp_path, seed=13):
        """Record a one-query service run (no calibration) and return
        (trace path, result canonical form)."""
        path = tmp_path / "t.jsonl"
        market = _scenario_market(seed)
        gold = generate_tweets(["gold-movie"], per_movie=8, seed=seed + 1)
        tweets = generate_tweets(["rio"], per_movie=10, seed=seed + 2)
        with TraceRecorder(market, path) as recorder:
            cdas = CDAS.with_default_jobs(recorder, seed=seed)
            service = cdas.service(max_in_flight=2)
            handle = service.submit(
                "twitter-sentiment", movie_query("rio", 0.9),
                tweets=tweets, gold_tweets=gold, worker_count=4, batch_size=5,
            )
            service.run_until_idle()
            result = handle.result()
        return path, result, gold, tweets

    def test_cdas_service_accepts_replay_backend(self, tmp_path):
        """`CDAS.service(backend=...)` runs the job registry against a
        replay backend on a fresh engine — results match the recording."""
        path, recorded_result, gold, tweets = self._record_single_query(tmp_path)
        cdas = CDAS.with_default_jobs(_scenario_market(13), seed=13)
        replay = TraceReplayBackend.load(path)
        service = cdas.service(max_in_flight=2, backend=replay)
        assert service.engine is not cdas.engine
        assert service.engine.market is replay
        handle = service.submit(
            "twitter-sentiment", movie_query("rio", 0.9),
            tweets=tweets, gold_tweets=gold, worker_count=4, batch_size=5,
        )
        service.run_until_idle()
        assert handle.result() == recorded_result
        assert replay.ledger.total_cost == pytest.approx(
            sum(h.cost for h in recorded_result.hit_results)
        )
        replay.verify_complete()

    def test_cdas_async_service_accepts_replay_backend(self, tmp_path):
        """Replay through the asyncio front door, paced so the driver's
        dormant sleeps are exercised by the recorded ETAs."""
        path, recorded_result, gold, tweets = self._record_single_query(tmp_path)

        async def drive():
            replay = TraceReplayBackend.load(path, time_scale=0.2)
            cdas = CDAS.with_default_jobs(_scenario_market(13), seed=13)
            async with cdas.async_service(
                max_in_flight=2, backend=replay
            ) as service:
                handle = service.submit(
                    "twitter-sentiment", movie_query("rio", 0.9),
                    tweets=tweets, gold_tweets=gold,
                    worker_count=4, batch_size=5,
                )
                result = await handle.result()
            replay.verify_complete()
            return result

        assert asyncio.run(drive()) == recorded_result

    def test_slow_recording_paced_replay_etas_positive(self, tmp_path):
        """With pacing, the replay backend really declares waits."""
        path = tmp_path / "t.jsonl"
        market = SlowBackend(_market(5), delay=0.02)
        with TraceRecorder(market, path) as recorder:
            handle = recorder.publish(_hit(n=2))
            while handle.next_submission() is None and not handle.done:
                time.sleep(0.005)
            while not handle.done:
                if handle.next_submission() is None:
                    time.sleep(0.005)
        replay = TraceReplayBackend.load(path, time_scale=1.0)
        handle = replay.publish(_hit(n=2))
        eta = handle.next_arrival_eta()
        assert eta is not None and eta > 0
        assert handle.peek_time() is None  # dormant until the recorded time
