"""Tests for simulated worker behaviours."""

from __future__ import annotations

import pytest

from repro.amt.hit import Question
from repro.amt.worker import (
    ColluderBehaviour,
    ReliableBehaviour,
    SpammerBehaviour,
    WorkerProfile,
    behaviour_for,
    effective_accuracy,
)
from repro.util.rng import substream


def _question(difficulty: float = 0.0) -> Question:
    return Question(
        question_id="q",
        options=("a", "b", "c"),
        truth="a",
        difficulty=difficulty,
        reason_keywords=("k1", "k2", "k3"),
    )


def _profile(accuracy: float = 0.8, behaviour: str = "reliable", clique: int = 0):
    return WorkerProfile(
        worker_id="w",
        true_accuracy=accuracy,
        approval_rate=0.9,
        behaviour=behaviour,
        clique=clique,
    )


class TestWorkerProfile:
    def test_validation(self):
        with pytest.raises(ValueError, match="accuracy"):
            WorkerProfile("w", 1.5, 0.9)
        with pytest.raises(ValueError, match="approval"):
            WorkerProfile("w", 0.5, -0.1)


class TestEffectiveAccuracy:
    def test_zero_difficulty_is_latent(self):
        assert effective_accuracy(_profile(0.8), _question(0.0)) == pytest.approx(0.8)

    def test_full_difficulty_is_uniform(self):
        assert effective_accuracy(_profile(0.8), _question(1.0)) == pytest.approx(1 / 3)

    def test_positive_difficulty_interpolates(self):
        assert effective_accuracy(_profile(0.8), _question(0.5)) == pytest.approx(
            0.5 * 0.8 + 0.5 / 3
        )

    def test_negative_difficulty_boosts(self):
        assert effective_accuracy(_profile(0.7), _question(-0.5)) == pytest.approx(
            0.5 * 0.7 + 0.5
        )

    def test_minus_one_is_certainty(self):
        assert effective_accuracy(_profile(0.3), _question(-1.0)) == pytest.approx(1.0)


class TestReliableBehaviour:
    def test_empirical_accuracy_matches_latent(self):
        rng = substream(11, "rel")
        profile = _profile(0.75)
        behaviour = ReliableBehaviour()
        question = _question(0.0)
        hits = sum(
            behaviour.answer(profile, question, rng)[0] == "a" for _ in range(4000)
        )
        assert hits / 4000 == pytest.approx(0.75, abs=0.02)

    def test_wrong_answers_cover_all_wrong_options(self):
        rng = substream(12, "rel")
        profile = _profile(0.0)  # always wrong
        behaviour = ReliableBehaviour()
        answers = {behaviour.answer(profile, _question(), rng)[0] for _ in range(200)}
        assert answers == {"b", "c"}

    def test_correct_answers_carry_reasons(self):
        rng = substream(13, "rel")
        profile = _profile(1.0)
        answer, reasons = ReliableBehaviour().answer(profile, _question(), rng)
        assert answer == "a"
        assert 1 <= len(reasons) <= 2
        assert set(reasons) <= {"k1", "k2", "k3"}

    def test_wrong_answers_have_no_reasons(self):
        rng = substream(14, "rel")
        profile = _profile(0.0)
        _, reasons = ReliableBehaviour().answer(profile, _question(), rng)
        assert reasons == ()


class TestSpammerBehaviour:
    def test_uniform_over_options(self):
        rng = substream(15, "spam")
        profile = _profile(0.9, behaviour="spammer")
        counts = {"a": 0, "b": 0, "c": 0}
        for _ in range(3000):
            counts[SpammerBehaviour().answer(profile, _question(), rng)[0]] += 1
        for v in counts.values():
            assert v / 3000 == pytest.approx(1 / 3, abs=0.04)


class TestColluderBehaviour:
    def test_clique_members_agree(self):
        q = _question()
        a1 = ColluderBehaviour().answer(
            _profile(0.0, "colluder", clique=4), q, substream(1, "x")
        )[0]
        a2 = ColluderBehaviour().answer(
            _profile(0.0, "colluder", clique=4), q, substream(2, "y")
        )[0]
        assert a1 == a2

    def test_always_wrong(self):
        q = _question()
        answer = ColluderBehaviour().answer(
            _profile(0.0, "colluder", clique=1), q, substream(3, "z")
        )[0]
        assert answer != q.truth

    def test_different_cliques_can_differ(self):
        # Across many questions, two cliques must disagree somewhere.
        diffs = 0
        for i in range(20):
            q = Question(
                question_id=f"q{i}", options=("a", "b", "c", "d"), truth="a"
            )
            a1 = ColluderBehaviour().answer(
                _profile(0.0, "colluder", clique=1), q, substream(1, "c")
            )[0]
            a2 = ColluderBehaviour().answer(
                _profile(0.0, "colluder", clique=2), q, substream(1, "c")
            )[0]
            diffs += a1 != a2
        assert diffs > 0


class TestBehaviourFor:
    def test_resolution(self):
        assert isinstance(behaviour_for(_profile()), ReliableBehaviour)
        assert isinstance(
            behaviour_for(_profile(behaviour="spammer")), SpammerBehaviour
        )
        assert isinstance(
            behaviour_for(_profile(behaviour="colluder")), ColluderBehaviour
        )

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown behaviour"):
            behaviour_for(_profile(behaviour="alien"))
