"""Tests for the cdas-lint invariant checker (DESIGN.md §15).

Each rule gets a fixture tree under ``tmp_path`` with a true positive
*and* a near-miss negative, the waiver and baseline channels are
exercised end to end, the JSON report schema is pinned, and — the
acceptance tests — the real tree lints clean while a deleted journal
flush in ``gateway/routes.py`` or an injected ``time.time()`` in
``engine/scheduler.py`` makes the lint fail.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    ENGINE_RULE,
    Finding,
    load_baseline,
    report_dict,
    run_lint,
    scan_waivers,
    write_baseline,
)
from repro.analysis.baseline import BaselineError
from repro.analysis.cli import main as lint_main
from repro.analysis.rules import (
    AsyncPurityRule,
    CodecClosureRule,
    DeterminismRule,
    DurabilityOrderingRule,
    SeamParityRule,
)
from repro.analysis.rules.seam_parity import ProtocolSpec, SeamPair

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_tree(root: Path, files: dict[str, str]) -> Path:
    """Write a synthetic ``repro/...`` tree and return its lint root."""
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def rule_findings(result, rule_id):
    return [f for f in result.findings if f.rule == rule_id]


# ---------------------------------------------------------------------------
# CDAS001 — determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_wall_clock_in_core_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/engine/sched.py": """
                import time

                def now():
                    return time.time()
                """
            },
        )
        result = run_lint(root, rules=[DeterminismRule()])
        (finding,) = rule_findings(result, "CDAS001")
        assert "time.time" in finding.message
        assert finding.symbol == "now"
        assert result.exit_code == 1

    def test_import_alias_is_resolved(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/core/clock.py": """
                import time as _t

                def probe():
                    return _t.time()
                """
            },
        )
        result = run_lint(root, rules=[DeterminismRule()])
        assert len(rule_findings(result, "CDAS001")) == 1

    def test_monotonic_clock_is_legal(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/engine/sched.py": """
                import time

                def elapsed(start):
                    return time.monotonic() - start
                """
            },
        )
        result = run_lint(root, rules=[DeterminismRule()])
        assert rule_findings(result, "CDAS001") == []

    def test_wall_clock_outside_core_is_out_of_scope(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/tsa/feed.py": """
                import time

                def stamp():
                    return time.time()
                """
            },
        )
        result = run_lint(root, rules=[DeterminismRule()])
        assert rule_findings(result, "CDAS001") == []

    def test_random_module_fires_and_seeded_generator_does_not(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/core/draws.py": """
                import random

                import numpy as np

                def bad():
                    return random.random()

                def good(seed):
                    return np.random.Generator(np.random.PCG64(seed))
                """
            },
        )
        result = run_lint(root, rules=[DeterminismRule()])
        findings = rule_findings(result, "CDAS001")
        assert [f.symbol for f in findings] == ["bad"]

    def test_seedless_bitgenerator_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/core/draws.py": """
                import numpy as np

                def entropy():
                    return np.random.PCG64()
                """
            },
        )
        result = run_lint(root, rules=[DeterminismRule()])
        assert len(rule_findings(result, "CDAS001")) == 1


# ---------------------------------------------------------------------------
# CDAS002 — async purity
# ---------------------------------------------------------------------------


class TestAsyncPurity:
    def test_sleep_in_async_def_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/gateway/handlers.py": """
                import time

                async def handler():
                    time.sleep(0.1)
                """
            },
        )
        result = run_lint(root, rules=[AsyncPurityRule()])
        (finding,) = rule_findings(result, "CDAS002")
        assert "time.sleep" in finding.message
        assert finding.symbol == "handler"

    def test_sleep_in_sync_def_is_legal(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/gateway/handlers.py": """
                import time

                def warmup():
                    time.sleep(0.1)
                """
            },
        )
        result = run_lint(root, rules=[AsyncPurityRule()])
        assert rule_findings(result, "CDAS002") == []

    def test_nested_sync_helper_is_not_the_loop(self, tmp_path):
        # A sync closure handed to a thread executor may block; only the
        # async body itself runs on the loop.
        root = make_tree(
            tmp_path,
            {
                "repro/cluster/pump.py": """
                import time

                async def drive(executor):
                    def blocking_probe():
                        time.sleep(1.0)
                    await executor(blocking_probe)
                """
            },
        )
        result = run_lint(root, rules=[AsyncPurityRule()])
        assert rule_findings(result, "CDAS002") == []

    def test_subprocess_in_async_def_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/cluster/spawn.py": """
                import subprocess

                async def launch():
                    return subprocess.run(["true"])
                """
            },
        )
        result = run_lint(root, rules=[AsyncPurityRule()])
        assert len(rule_findings(result, "CDAS002")) == 1

    def test_asyncio_sleep_is_legal(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/gateway/handlers.py": """
                import asyncio

                async def handler():
                    await asyncio.sleep(0.1)
                """
            },
        )
        result = run_lint(root, rules=[AsyncPurityRule()])
        assert rule_findings(result, "CDAS002") == []


# ---------------------------------------------------------------------------
# CDAS003 — durability ordering
# ---------------------------------------------------------------------------

WRAPPER_OK = """
class DurableService:
    def submit(self, *args, **kwargs):
        record = {"k": "submit"}
        self._observed(record)
        return self.service.submit(*args, **kwargs)

    def _cancel(self, record):
        self._observed({"k": "cancel"})
        self.service._cancel(record)
"""

WRAPPER_UNJOURNALED = """
class DurableService:
    def register_tenant(self, name, **kwargs):
        return self.service.register_tenant(name, **kwargs)
"""

WRAPPER_WRITE_BEHIND = """
class DurableService:
    def _cancel(self, record):
        self.service._cancel(record)
        self._append({"k": "cancel"})
"""

ROUTES_OK = """
async def submit(app, tenant, body):
    service = app.mux[tenant]
    handle = await service.submit(body["job"], body["query"])
    flush = getattr(service.service, "flush_journal", None)
    if flush is not None:
        flush()
    return 201, handle
"""

ROUTES_NO_FLUSH = """
async def submit(app, tenant, body):
    service = app.mux[tenant]
    handle = await service.submit(body["job"], body["query"])
    return 201, handle
"""


class TestDurabilityOrdering:
    def test_journaled_wrapper_and_flushed_route_pass(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/durability/service.py": WRAPPER_OK,
                "repro/gateway/routes.py": ROUTES_OK,
            },
        )
        result = run_lint(root, rules=[DurabilityOrderingRule()])
        assert rule_findings(result, "CDAS003") == []

    def test_unjournaled_mutation_fires(self, tmp_path):
        root = make_tree(
            tmp_path, {"repro/durability/service.py": WRAPPER_UNJOURNALED}
        )
        result = run_lint(root, rules=[DurabilityOrderingRule()])
        (finding,) = rule_findings(result, "CDAS003")
        assert "register_tenant" in finding.message
        assert "journal" in finding.message

    def test_write_behind_cancel_fires(self, tmp_path):
        root = make_tree(
            tmp_path, {"repro/durability/service.py": WRAPPER_WRITE_BEHIND}
        )
        result = run_lint(root, rules=[DurabilityOrderingRule()])
        (finding,) = rule_findings(result, "CDAS003")
        assert "write-ahead" in finding.message

    def test_route_without_flush_fires(self, tmp_path):
        root = make_tree(tmp_path, {"repro/gateway/routes.py": ROUTES_NO_FLUSH})
        result = run_lint(root, rules=[DurabilityOrderingRule()])
        (finding,) = rule_findings(result, "CDAS003")
        assert "flush" in finding.message
        assert finding.symbol == "submit"

    def test_same_shapes_outside_scoped_files_are_ignored(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/engine/scheduler.py": WRAPPER_UNJOURNALED,
                "repro/gateway/app.py": ROUTES_NO_FLUSH,
            },
        )
        result = run_lint(root, rules=[DurabilityOrderingRule()])
        assert rule_findings(result, "CDAS003") == []


# ---------------------------------------------------------------------------
# CDAS004 — codec closure
# ---------------------------------------------------------------------------

CODEC_FIXTURE = """
def register(cls):
    return cls

def _register_builtins():
    from repro.boundary.types import Alpha
    for cls in (Alpha,):
        register(cls)

_register_builtins()
"""

BOUNDARY_TYPES = """
from dataclasses import dataclass

@dataclass
class Alpha:
    value: int

@dataclass
class Beta:
    value: int

class NotADataclass:
    pass
"""


class TestCodecClosure:
    def test_unregistered_boundary_dataclass_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/durability/codec.py": CODEC_FIXTURE,
                "repro/boundary/types.py": BOUNDARY_TYPES,
            },
        )
        result = run_lint(root, rules=[CodecClosureRule()])
        (finding,) = rule_findings(result, "CDAS004")
        assert "repro.boundary.types.Beta" in finding.message
        assert finding.symbol == "Beta"

    def test_registering_the_sibling_closes_the_table(self, tmp_path):
        codec = CODEC_FIXTURE.replace(
            "from repro.boundary.types import Alpha",
            "from repro.boundary.types import Alpha, Beta",
        ).replace("for cls in (Alpha,):", "for cls in (Alpha, Beta):")
        root = make_tree(
            tmp_path,
            {
                "repro/durability/codec.py": codec,
                "repro/boundary/types.py": BOUNDARY_TYPES,
            },
        )
        result = run_lint(root, rules=[CodecClosureRule()])
        assert rule_findings(result, "CDAS004") == []

    def test_ghost_registration_fires(self, tmp_path):
        codec = CODEC_FIXTURE.replace(
            "from repro.boundary.types import Alpha",
            "from repro.boundary.types import Alpha, Vanished",
        ).replace("for cls in (Alpha,):", "for cls in (Alpha, Vanished):")
        root = make_tree(
            tmp_path,
            {
                "repro/durability/codec.py": codec,
                "repro/boundary/types.py": BOUNDARY_TYPES,
            },
        )
        result = run_lint(root, rules=[CodecClosureRule()])
        messages = [f.message for f in rule_findings(result, "CDAS004")]
        assert any("Vanished" in m and "does not resolve" in m for m in messages)

    def test_decorator_registration_counts(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/durability/codec.py": CODEC_FIXTURE,
                "repro/boundary/types.py": BOUNDARY_TYPES.replace(
                    "@dataclass\nclass Beta:",
                    "from repro.durability.codec import register\n\n"
                    "@register\n@dataclass\nclass Beta:",
                ),
            },
        )
        result = run_lint(root, rules=[CodecClosureRule()])
        assert rule_findings(result, "CDAS004") == []


# ---------------------------------------------------------------------------
# CDAS005 — seam parity
# ---------------------------------------------------------------------------

REFERENCE_SEAM = """
class Ref:
    def submit(self, job_name, query, *, tenant=None, budget=None):
        return (job_name, query, tenant, budget)

    @property
    def idle(self):
        return True
"""


def seam_rule():
    return SeamParityRule(
        pairs=(
            SeamPair(
                reference=("repro/a.py", "Ref"),
                mirror=("repro/b.py", "Mir"),
                members=("submit", "idle"),
            ),
        ),
        protocols=(),
    )


class TestSeamParity:
    def test_parity_holds_even_across_async(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/a.py": REFERENCE_SEAM,
                "repro/b.py": """
                class Mir:
                    async def submit(self, job_name, query, *, tenant=None, budget=None):
                        return (job_name, query, tenant, budget)

                    @property
                    def idle(self):
                        return False
                """,
            },
        )
        result = run_lint(root, rules=[seam_rule()])
        assert rule_findings(result, "CDAS005") == []

    def test_missing_member_fires_on_the_mirror(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/a.py": REFERENCE_SEAM,
                "repro/b.py": """
                class Mir:
                    def submit(self, job_name, query, *, tenant=None, budget=None):
                        return None
                """,
            },
        )
        result = run_lint(root, rules=[seam_rule()])
        (finding,) = rule_findings(result, "CDAS005")
        assert "idle" in finding.message
        assert finding.path.endswith("repro/b.py")

    def test_arity_and_kwonly_drift_fire(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/a.py": REFERENCE_SEAM,
                "repro/b.py": """
                class Mir:
                    def submit(self, job_name, *, tenant=None):
                        return None

                    @property
                    def idle(self):
                        return False
                """,
            },
        )
        result = run_lint(root, rules=[seam_rule()])
        (finding,) = rule_findings(result, "CDAS005")
        assert "arity differs" in finding.message
        assert "budget" in finding.message

    def test_kind_mismatch_fires(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/a.py": REFERENCE_SEAM,
                "repro/b.py": """
                class Mir:
                    def submit(self, job_name, query, *, tenant=None, budget=None):
                        return None

                    def idle(self):
                        return False
                """,
            },
        )
        result = run_lint(root, rules=[seam_rule()])
        (finding,) = rule_findings(result, "CDAS005")
        assert "kind mismatch" in finding.message

    def test_protocol_implementor_missing_member_fires(self, tmp_path):
        rule = SeamParityRule(
            pairs=(),
            protocols=(
                ProtocolSpec(
                    protocol=("repro/proto.py", "Store"),
                    anchor="append",
                    scope=("repro/stores/",),
                ),
            ),
        )
        root = make_tree(
            tmp_path,
            {
                "repro/proto.py": """
                from typing import Protocol

                class Store(Protocol):
                    def append(self, record): ...
                    def commit(self): ...
                """,
                "repro/stores/memory.py": """
                class MemoryStore:
                    def append(self, record):
                        pass
                """,
                "repro/stores/unrelated.py": """
                class NotAStore:
                    def read(self):
                        pass
                """,
            },
        )
        result = run_lint(root, rules=[rule])
        (finding,) = rule_findings(result, "CDAS005")
        assert "MemoryStore" in finding.message
        assert "commit" in finding.message


# ---------------------------------------------------------------------------
# Waivers
# ---------------------------------------------------------------------------

VIOLATION = """
import time

def now():
    return time.time()
"""


class TestWaivers:
    def run(self, tmp_path, source):
        root = make_tree(tmp_path, {"repro/engine/sched.py": source})
        return run_lint(root, rules=[DeterminismRule()])

    def test_waiver_on_line_above_suppresses(self, tmp_path):
        source = VIOLATION.replace(
            "    return time.time()",
            "    # cdas-lint: disable=CDAS001 probe, never journaled\n"
            "    return time.time()",
        )
        result = self.run(tmp_path, source)
        (finding,) = result.findings
        assert finding.waived and finding.waiver == "probe, never journaled"
        assert result.exit_code == 0

    def test_trailing_waiver_suppresses(self, tmp_path):
        source = VIOLATION.replace(
            "    return time.time()",
            "    return time.time()  # cdas-lint: disable=CDAS001 probe only",
        )
        result = self.run(tmp_path, source)
        assert result.exit_code == 0

    def test_file_level_waiver_covers_everything(self, tmp_path):
        source = (
            "# cdas-lint: disable-file=CDAS001 synthetic fixture\n" + VIOLATION
        )
        result = self.run(tmp_path, source)
        assert result.exit_code == 0
        assert all(f.waived for f in result.findings)

    def test_waiver_for_the_wrong_rule_does_not_suppress(self, tmp_path):
        source = VIOLATION.replace(
            "    return time.time()",
            "    return time.time()  # cdas-lint: disable=CDAS002 wrong rule",
        )
        result = self.run(tmp_path, source)
        assert result.exit_code == 1

    def test_waiver_without_reason_is_itself_a_finding(self, tmp_path):
        source = VIOLATION.replace(
            "    return time.time()",
            "    return time.time()  # cdas-lint: disable=CDAS001",
        )
        result = self.run(tmp_path, source)
        rules = sorted(f.rule for f in result.findings)
        assert rules == ["CDAS000", "CDAS001"]
        assert result.exit_code == 1

    def test_malformed_waiver_is_a_finding(self, tmp_path):
        source = "# cdas-lint: dissable=CDAS001 typo\n"
        waivers = scan_waivers(source, "x.py")
        (problem,) = waivers.problems
        assert problem.rule == ENGINE_RULE
        assert waivers.waivers == []

    def test_prose_mentioning_the_marker_is_not_a_waiver(self, tmp_path):
        source = "# see the docs for cdas-lint: disable syntax\n"
        waivers = scan_waivers(source, "x.py")
        assert waivers.problems == [] and waivers.waivers == []

    def test_waiver_inside_string_literal_does_not_count(self, tmp_path):
        source = VIOLATION.replace(
            "    return time.time()",
            '    _ = "# cdas-lint: disable=CDAS001 inside a string"\n'
            "    return time.time()",
        )
        result = self.run(tmp_path, source)
        assert result.exit_code == 1

    def test_multi_rule_waiver(self, tmp_path):
        source = "# cdas-lint: disable=CDAS001, CDAS002 one reason for both\n"
        waivers = scan_waivers(source, "x.py")
        (waiver,) = waivers.waivers
        assert waiver.rules == ("CDAS001", "CDAS002")
        assert waiver.reason == "one reason for both"


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def fixture(self, tmp_path):
        return make_tree(tmp_path, {"repro/engine/sched.py": VIOLATION})

    def test_baselined_finding_does_not_fail(self, tmp_path):
        root = self.fixture(tmp_path)
        first = run_lint(root, rules=[DeterminismRule()])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings)
        baseline = load_baseline(baseline_path)
        second = run_lint(root, rules=[DeterminismRule()], baseline=baseline)
        assert second.exit_code == 0
        assert [f.baselined for f in second.findings] == [True]
        assert second.stale_baseline == []

    def test_fingerprints_survive_line_moves(self, tmp_path):
        root = self.fixture(tmp_path)
        first = run_lint(root, rules=[DeterminismRule()])
        (root / "repro/engine/sched.py").write_text(
            "# a new leading comment\n\n" + VIOLATION, encoding="utf-8"
        )
        second = run_lint(root, rules=[DeterminismRule()])
        assert first.findings[0].fingerprint() == second.findings[0].fingerprint()
        assert first.findings[0].line != second.findings[0].line

    def test_fixed_finding_reports_stale_entry(self, tmp_path):
        root = self.fixture(tmp_path)
        first = run_lint(root, rules=[DeterminismRule()])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings)
        (root / "repro/engine/sched.py").write_text(
            "import time\n\ndef elapsed(s):\n    return time.monotonic() - s\n",
            encoding="utf-8",
        )
        result = run_lint(
            root, rules=[DeterminismRule()], baseline=load_baseline(baseline_path)
        )
        assert result.exit_code == 0
        assert len(result.stale_baseline) == 1

    def test_baseline_is_a_multiset(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "repro/engine/sched.py": """
                import time

                def now():
                    return time.time()
                """
            },
        )
        first = run_lint(root, rules=[DeterminismRule()])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings)
        # A second identical call in the same function shares the
        # line-free fingerprint; the baseline covers only one of them.
        (root / "repro/engine/sched.py").write_text(
            "import time\n\ndef now():\n    return time.time() - time.time()\n",
            encoding="utf-8",
        )
        result = run_lint(
            root, rules=[DeterminismRule()], baseline=load_baseline(baseline_path)
        )
        assert sum(1 for f in result.findings if f.baselined) == 1
        assert len(result.new_findings) == 1
        assert result.exit_code == 1

    def test_unwaivable_engine_findings(self, tmp_path):
        # A syntax error can't be waived away by a comment in the file.
        root = make_tree(
            tmp_path,
            {"repro/engine/broken.py": "def oops(:\n    pass\n"},
        )
        result = run_lint(root, rules=[DeterminismRule()])
        (finding,) = result.findings
        assert finding.rule == ENGINE_RULE and finding.new
        assert result.exit_code == 1

    def test_unreadable_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}


# ---------------------------------------------------------------------------
# JSON report + CLI
# ---------------------------------------------------------------------------


class TestReportAndCli:
    def test_report_schema(self, tmp_path):
        root = make_tree(tmp_path, {"repro/engine/sched.py": VIOLATION})
        result = run_lint(root, rules=[DeterminismRule()])
        report = report_dict(
            result.findings,
            checked_files=result.checked_files,
            rules=result.rules,
            stale_baseline=result.stale_baseline,
        )
        assert report["version"] == 1 and report["tool"] == "cdas-lint"
        (entry,) = report["findings"]
        assert set(entry) == {
            "rule", "path", "line", "col", "symbol", "message",
            "fingerprint", "waived", "waiver", "baselined",
        }
        summary = report["summary"]
        assert summary["total"] == summary["new"] == 1
        assert summary["by_rule"] == {"CDAS001": 1}
        assert summary["stale_baseline_entries"] == []
        json.dumps(report)  # must be serialisable as-is

    def test_cli_json_output_and_exit_code(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"repro/engine/sched.py": VIOLATION})
        out = tmp_path / "report.json"
        code = lint_main(["--root", str(root), "--json", str(out)])
        assert code == 1
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["summary"]["new"] == 1
        rendered = capsys.readouterr().out
        assert "CDAS001" in rendered

    def test_cli_write_baseline_then_clean(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"repro/engine/sched.py": VIOLATION})
        baseline = root / "lint-baseline.json"
        assert lint_main(["--root", str(root), "--write-baseline"]) == 0
        assert baseline.is_file()
        capsys.readouterr()
        assert lint_main(["--root", str(root)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_cli_rejects_missing_paths(self, tmp_path, capsys):
        code = lint_main(["--root", str(tmp_path), "no/such/file.py"])
        assert code == 2
        assert "do not exist" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("CDAS001", "CDAS002", "CDAS003", "CDAS004", "CDAS005"):
            assert rule_id in out

    def test_markdown_summary(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"repro/engine/sched.py": VIOLATION})
        code = lint_main(["--root", str(root), "--quiet", "--markdown", "-"])
        assert code == 1
        out = capsys.readouterr().out
        assert "### cdas-lint" in out and "| CDAS001 | 1 " in out


# ---------------------------------------------------------------------------
# Acceptance: the real tree, clean and deliberately broken
# ---------------------------------------------------------------------------


class TestAcceptance:
    def test_real_tree_lints_clean(self):
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        result = run_lint(REPO_ROOT, baseline=baseline)
        assert result.new_findings == []
        assert result.exit_code == 0
        assert result.checked_files > 100
        # The ratchet holds: nothing hides in the checked-in baseline.
        assert sum(baseline.values()) == 0
        # Every waiver in the tree carries its reason along.
        assert all(f.waiver for f in result.findings if f.waived)

    def test_deleting_the_journal_flush_fails_the_lint(self, tmp_path):
        real = (REPO_ROOT / "src/repro/gateway/routes.py").read_text(
            encoding="utf-8"
        )
        sabotaged = real.replace("flush_journal", "flush_disabled")
        assert sabotaged != real
        root = make_tree(tmp_path, {"repro/gateway/routes.py": sabotaged})
        result = run_lint(root)
        findings = rule_findings(result, "CDAS003")
        assert findings and all(f.new for f in findings)
        assert result.exit_code == 1

    def test_wall_clock_in_the_scheduler_fails_the_lint(self, tmp_path):
        real = (REPO_ROOT / "src/repro/engine/scheduler.py").read_text(
            encoding="utf-8"
        )
        sabotaged = real + (
            "\n\nimport time as _probe_time\n\n\n"
            "def _wall_clock_probe():\n"
            "    return _probe_time.time()\n"
        )
        root = make_tree(tmp_path, {"repro/engine/scheduler.py": sabotaged})
        result = run_lint(root)
        (finding,) = rule_findings(result, "CDAS001")
        assert finding.symbol == "_wall_clock_probe"
        assert result.exit_code == 1

    def test_unregistered_boundary_dataclass_fails_the_lint(self, tmp_path):
        real = (REPO_ROOT / "src/repro/tsa/tweets.py").read_text(
            encoding="utf-8"
        )
        codec = (REPO_ROOT / "src/repro/durability/codec.py").read_text(
            encoding="utf-8"
        )
        sabotaged = real + (
            "\n\n@dataclass\nclass SmuggledDescriptor:\n    payload: str\n"
        )
        root = make_tree(
            tmp_path,
            {
                "repro/tsa/tweets.py": sabotaged,
                "repro/durability/codec.py": codec,
            },
        )
        result = run_lint(root, rules=[CodecClosureRule()])
        findings = rule_findings(result, "CDAS004")
        assert [f.symbol for f in findings] == ["SmuggledDescriptor"]
