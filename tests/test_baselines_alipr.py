"""Tests for the simulated ALIPR annotator (Figure 17's machine baseline)."""

from __future__ import annotations

import pytest

from repro.baselines.alipr import SimulatedALIPR
from repro.it.images import SUBJECTS, generate_images, tag_prototypes, tag_vocabulary


class TestSimulatedALIPR:
    def test_annotates_top_k(self):
        images = generate_images(per_subject=2, seed=1)
        alipr = SimulatedALIPR(seed=1, top_k=5)
        tags = alipr.annotate(images[0])
        assert len(tags) == 5
        assert len(set(tags)) == 5
        assert set(tags) <= set(alipr.vocabulary)

    def test_rank_covers_vocabulary(self):
        images = generate_images(per_subject=1, seed=2)
        alipr = SimulatedALIPR(seed=2)
        ranked = alipr.rank_tags(images[0])
        assert len(ranked) == len(tag_vocabulary())
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_recall_in_unit_interval(self):
        images = generate_images(per_subject=3, seed=3)
        alipr = SimulatedALIPR(seed=3)
        for image in images:
            assert 0.0 <= alipr.recall(image) <= 1.0

    def test_paper_band_low_accuracy(self):
        """Figure 17 calibration: ALIPR recall lands well below the crowd,
        in (or near) the paper's 10-30% band per subject."""
        images = generate_images(per_subject=20, seed=2012)
        alipr = SimulatedALIPR(seed=2012)
        for subject in SUBJECTS:
            group = [i for i in images if i.subject == subject]
            acc = alipr.group_accuracy(group)
            assert 0.02 <= acc <= 0.45, f"{subject}: {acc}"

    def test_better_with_less_noise(self):
        from repro.it.images import ImageCorpusConfig

        sharp = generate_images(
            per_subject=15, seed=4, config=ImageCorpusConfig(feature_noise=0.05)
        )
        noisy = generate_images(
            per_subject=15, seed=4, config=ImageCorpusConfig(feature_noise=1.5)
        )
        alipr = SimulatedALIPR(seed=4)
        assert alipr.group_accuracy(sharp) > alipr.group_accuracy(noisy)

    def test_shared_prototypes_mode(self):
        protos = tag_prototypes(seed=9)
        alipr = SimulatedALIPR(prototypes=protos, top_k=3)
        assert set(alipr.vocabulary) == set(protos)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedALIPR(top_k=0)
        with pytest.raises(ValueError):
            SimulatedALIPR(prototypes={})
        alipr = SimulatedALIPR(seed=1)
        with pytest.raises(ValueError, match="empty"):
            alipr.group_accuracy([])
