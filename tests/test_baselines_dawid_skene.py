"""Tests for the Dawid–Skene EM extension baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dawid_skene import DawidSkene
from repro.util.rng import substream

LABELS = ("pos", "neu", "neg")


def _synthetic_votes(
    questions: int, workers: int, accuracy: float, seed: int
) -> tuple[dict[str, dict[str, str]], dict[str, str]]:
    """Votes from homogeneous workers of the given accuracy."""
    rng = substream(seed, "ds")
    truths = {}
    votes: dict[str, dict[str, str]] = {}
    for q in range(questions):
        truth = LABELS[int(rng.integers(3))]
        truths[f"q{q}"] = truth
        sheet = {}
        for w in range(workers):
            if rng.random() < accuracy:
                sheet[f"w{w}"] = truth
            else:
                wrong = [lab for lab in LABELS if lab != truth]
                sheet[f"w{w}"] = wrong[int(rng.integers(2))]
        votes[f"q{q}"] = sheet
    return votes, truths


class TestDawidSkene:
    def test_recovers_truth_with_decent_workers(self):
        votes, truths = _synthetic_votes(80, 9, accuracy=0.75, seed=1)
        result = DawidSkene(LABELS).fit(votes)
        correct = sum(result.predict(q) == t for q, t in truths.items())
        assert correct / len(truths) > 0.9

    def test_beats_single_worker_quality(self):
        votes, truths = _synthetic_votes(100, 7, accuracy=0.65, seed=2)
        result = DawidSkene(LABELS).fit(votes)
        correct = sum(result.predict(q) == t for q, t in truths.items())
        assert correct / len(truths) > 0.65

    def test_posteriors_are_distributions(self):
        votes, _ = _synthetic_votes(20, 5, accuracy=0.7, seed=3)
        result = DawidSkene(LABELS).fit(votes)
        for post in result.posteriors.values():
            assert sum(post.values()) == pytest.approx(1.0)
            assert all(0.0 <= p <= 1.0 for p in post.values())

    def test_confusion_matrices_row_stochastic(self):
        votes, _ = _synthetic_votes(30, 6, accuracy=0.7, seed=4)
        result = DawidSkene(LABELS).fit(votes)
        for confusion in result.worker_confusion.values():
            assert np.allclose(confusion.sum(axis=1), 1.0)

    def test_worker_accuracy_estimates_order(self):
        # One strong worker among weak ones should get the higher
        # estimated accuracy.
        rng = substream(5, "mix")
        votes: dict[str, dict[str, str]] = {}
        for q in range(120):
            truth = LABELS[int(rng.integers(3))]
            sheet = {}
            for w, acc in (("strong", 0.95), ("weak1", 0.4), ("weak2", 0.4),
                           ("weak3", 0.4), ("weak4", 0.4)):
                if rng.random() < acc:
                    sheet[w] = truth
                else:
                    wrong = [lab for lab in LABELS if lab != truth]
                    sheet[w] = wrong[int(rng.integers(2))]
            votes[f"q{q}"] = sheet
        result = DawidSkene(LABELS).fit(votes)
        assert result.worker_accuracy("strong") > result.worker_accuracy("weak1")

    def test_class_priors_sum_to_one(self):
        votes, _ = _synthetic_votes(30, 5, accuracy=0.7, seed=6)
        result = DawidSkene(LABELS).fit(votes)
        assert sum(result.class_priors.values()) == pytest.approx(1.0)

    def test_deterministic(self):
        votes, _ = _synthetic_votes(30, 5, accuracy=0.7, seed=7)
        a = DawidSkene(LABELS).fit(votes)
        b = DawidSkene(LABELS).fit(votes)
        assert a.posteriors == b.posteriors
        assert a.iterations == b.iterations

    def test_converges_within_cap(self):
        votes, _ = _synthetic_votes(50, 7, accuracy=0.7, seed=8)
        result = DawidSkene(LABELS, max_iterations=500, tolerance=1e-5).fit(votes)
        assert result.iterations < 500

    def test_validation(self):
        with pytest.raises(ValueError):
            DawidSkene(("only",))
        with pytest.raises(ValueError):
            DawidSkene(("a", "a"))
        with pytest.raises(ValueError):
            DawidSkene(LABELS, max_iterations=0)
        with pytest.raises(ValueError):
            DawidSkene(LABELS).fit({})
        with pytest.raises(ValueError, match="no answers"):
            DawidSkene(LABELS).fit({"q1": {}})
        with pytest.raises(ValueError, match="outside labels"):
            DawidSkene(LABELS).fit({"q1": {"w1": "weird"}})
