"""Tests for the text features and the Pegasos SVM baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.features import Vocabulary, tokenize
from repro.baselines.svm import PegasosSVM, TextClassifier


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Great MOVIE, loved it!") == ["great", "movie", "loved"]

    def test_stopwords_removed(self):
        assert tokenize("it is the best of the best") == ["best", "best"]

    def test_keeps_contractions(self):
        assert "don't" in tokenize("I don't care")

    def test_numbers_kept(self):
        assert tokenize("rated 10 out of 10") == ["rated", "10", "out", "10"]


class TestVocabulary:
    def test_fit_prunes_rare(self):
        vocab = Vocabulary(min_count=2).fit(["apple apple pear", "apple banana"])
        assert "apple" in vocab
        assert "pear" not in vocab

    def test_max_size(self):
        vocab = Vocabulary(min_count=1, max_size=2).fit(
            ["a1 a1 a1 b2 b2 c3 c3 c3 c3"]
        )
        assert len(vocab) == 2
        assert "c3" in vocab and "a1" in vocab

    def test_transform_shape_and_bias(self):
        vocab = Vocabulary(min_count=1).fit(["alpha beta", "beta gamma"])
        vec = vocab.transform("beta beta")
        assert vec.shape == (len(vocab) + 1,)
        assert vec[-1] == 1.0  # bias slot

    def test_transform_l2_normalised(self):
        vocab = Vocabulary(min_count=1).fit(["alpha beta gamma"])
        vec = vocab.transform("alpha beta")
        assert np.linalg.norm(vec[:-1]) == pytest.approx(1.0)

    def test_oov_ignored(self):
        vocab = Vocabulary(min_count=1).fit(["alpha beta"])
        vec = vocab.transform("zeta eta theta")
        assert np.all(vec[:-1] == 0.0)

    def test_unfitted_transform_rejected(self):
        with pytest.raises(ValueError, match="not fitted"):
            Vocabulary().transform("anything")

    def test_empty_vocab_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Vocabulary(min_count=5).fit(["one two three"])

    def test_validation(self):
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)
        with pytest.raises(ValueError):
            Vocabulary(max_size=0)


class TestPegasosSVM:
    def _separable(self, n=200, d=6, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, d))
        w_true = rng.normal(size=d)
        y = np.where(x @ w_true > 0, 1.0, -1.0)
        return x, y

    def test_fits_separable_data(self):
        x, y = self._separable()
        model = PegasosSVM(epochs=30).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_deterministic_given_seed(self):
        x, y = self._separable()
        m1 = PegasosSVM(epochs=5, seed=3).fit(x, y)
        m2 = PegasosSVM(epochs=5, seed=3).fit(x, y)
        assert np.allclose(m1.decision(x), m2.decision(x))

    def test_label_validation(self):
        x, _ = self._separable()
        with pytest.raises(ValueError, match="±1"):
            PegasosSVM().fit(x, np.zeros(len(x)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PegasosSVM().fit(np.zeros(3), np.ones(3))
        with pytest.raises(ValueError, match="rows"):
            PegasosSVM().fit(np.zeros((3, 2)), np.ones(4))

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError, match="not fitted"):
            PegasosSVM().decision(np.zeros((1, 2)))


class TestTextClassifier:
    TRAIN = (
        ["great amazing wonderful"] * 10
        + ["terrible awful horrible"] * 10
        + ["tickets showtime friday"] * 10
    )
    LABELS = ["pos"] * 10 + ["neg"] * 10 + ["neu"] * 10

    def test_learns_separable_classes(self):
        clf = TextClassifier(min_count=1, epochs=10).fit(self.TRAIN, self.LABELS)
        assert clf.predict(["an amazing great film"]) == ["pos"]
        assert clf.predict(["what a terrible awful mess"]) == ["neg"]
        assert clf.predict(["friday showtime tickets please"]) == ["neu"]

    def test_accuracy_on_train(self):
        clf = TextClassifier(min_count=1, epochs=10).fit(self.TRAIN, self.LABELS)
        assert clf.accuracy(self.TRAIN, self.LABELS) == 1.0

    def test_classes_sorted(self):
        clf = TextClassifier(min_count=1, epochs=2).fit(self.TRAIN, self.LABELS)
        assert clf.classes == ("neg", "neu", "pos")

    def test_decision_matrix_shape(self):
        clf = TextClassifier(min_count=1, epochs=2).fit(self.TRAIN, self.LABELS)
        margins = clf.decision_matrix(["great", "terrible"])
        assert margins.shape == (2, 3)

    def test_validation(self):
        with pytest.raises(ValueError, match="texts vs"):
            TextClassifier().fit(["a"], ["x", "y"])
        with pytest.raises(ValueError, match="empty"):
            TextClassifier().fit([], [])
        with pytest.raises(ValueError, match="2 classes"):
            TextClassifier(min_count=1).fit(["a b"], ["only"])
        clf = TextClassifier(min_count=1, epochs=1).fit(self.TRAIN, self.LABELS)
        with pytest.raises(ValueError, match="empty"):
            clf.accuracy([], [])
