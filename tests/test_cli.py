"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import experiment_registry, main


class TestRegistry:
    def test_contains_paper_and_ablation_experiments(self):
        registry = experiment_registry()
        assert "fig7" in registry
        assert "table3+4" in registry
        assert "ablation-colluders" in registry
        assert "ablation-cross-job" in registry
        assert "latency-study" in registry
        assert "fig4" in registry
        assert len(registry) == 23


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out
        assert "ablation-aggregators" in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "table3+4"]) == 0
        out = capsys.readouterr().out
        assert "verification" in out
        assert "0.495" in out

    def test_run_fig6_with_seed(self, capsys):
        assert main(["run", "fig6", "--seed", "7"]) == 0
        assert "conservative" in capsys.readouterr().out

    def test_run_csv_output(self, capsys):
        assert main(["run", "fig6", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "required_accuracy,conservative,binary_search"
        assert "," in out.splitlines()[1]

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_plan(self, capsys):
        code = main(
            [
                "plan",
                "--accuracy", "0.9",
                "--budget", "100",
                "--mu", "0.7",
                "--rate", "50",
                "--window", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "workers per item" in out
        assert "limited by" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_serve_runs_mixed_queries_through_one_service(self, capsys):
        assert main(["serve", "--seed", "7", "--slots", "4"]) == 0
        out = capsys.readouterr().out
        assert "2 tenants" in out
        # Per-handle progress lines while the service is pumping...
        assert "running" in out
        assert "[acme  ]" in out and "[globex]" in out
        # ...and a terminal summary once it drains.
        assert "-- service idle --" in out
        assert out.count("done") >= 3
        assert "total spend $" in out

    def test_serve_is_deterministic(self, capsys):
        assert main(["serve", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["serve", "--seed", "7"]) == 0
        assert capsys.readouterr().out == first

    def test_serve_asyncio_runs_through_service_mux(self, capsys):
        assert main(["serve", "--seed", "7", "--asyncio"]) == 0
        out = capsys.readouterr().out
        assert "2 services" in out and "event loop" in out
        # Interleaved per-handle progress lines streamed from updates()...
        assert "[acme  ]" in out and "[globex]" in out
        assert "running" in out
        # ...and a terminal summary once every service drains.
        assert "-- mux idle --" in out
        assert out.count("done") >= 3
        assert "total spend $" in out

    def test_serve_asyncio_is_deterministic(self, capsys):
        assert main(["serve", "--seed", "7", "--asyncio"]) == 0
        first = capsys.readouterr().out
        assert main(["serve", "--seed", "7", "--asyncio"]) == 0
        assert capsys.readouterr().out == first


class TestExplainAndPreAdmit:
    """The plan-first lifecycle on the CLI (DESIGN.md §10)."""

    def test_explain_prints_plan_tables(self, capsys):
        assert main(["explain", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "workers per item" in out
        assert "projected spend" in out
        assert "expected accuracy" in out
        # Uncapped tenants: every demo query admits.
        assert out.count("ADMIT") == 3
        assert "REJECT" not in out
        assert "planning is pure" in out

    def test_explain_rejects_with_counter_offer_under_a_small_cap(self, capsys):
        assert main(["explain", "--seed", "7", "--tenant-budget", "0.1"]) == 0
        out = capsys.readouterr().out
        # The two 3-HIT TSA queries (~$0.225) exceed the $0.10 cap; the
        # 1-HIT IT query (~$0.075) fits.
        assert out.count("REJECT") == 2
        assert out.count("ADMIT") == 1
        assert out.count("counter-offer") == 2
        assert "workers/item" in out

    def test_explain_is_deterministic(self, capsys):
        args = ["explain", "--seed", "7", "--tenant-budget", "0.1"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_serve_pre_admit_plans_then_matches_plain_serve(self, capsys):
        assert main(["serve", "--seed", "7"]) == 0
        plain = capsys.readouterr().out
        assert main(["serve", "--seed", "7", "--pre-admit"]) == 0
        pre = capsys.readouterr().out
        assert "plan [" in pre and "reserves $" in pre
        assert "plan-first reservations" in pre
        # Reservation-gated execution is bit-identical to the reactive
        # path on uncapped tenants: same progress, results and spend.
        plan_lines = len(pre.splitlines()) - len(plain.splitlines())
        assert pre.splitlines()[plan_lines:][1:] == plain.splitlines()[1:]

    def test_serve_pre_admit_asyncio(self, capsys):
        assert main(["serve", "--seed", "7", "--asyncio", "--pre-admit"]) == 0
        out = capsys.readouterr().out
        assert "plan [" in out
        assert "-- mux idle --" in out
        assert out.count("done") >= 3


class TestRecordReplay:
    """The `record` / `replay` subcommands (DESIGN.md §9)."""

    def _record(self, tmp_path, capsys, *extra):
        trace = tmp_path / "trace.jsonl"
        args = ["record", "--out", str(trace), "--seed", "5", *extra]
        assert main(args) == 0
        out = capsys.readouterr().out
        return trace, out

    def test_record_then_replay_round_trips(self, tmp_path, capsys):
        trace, record_out = self._record(tmp_path, capsys)
        assert "trace fingerprint" in record_out
        assert trace.exists()
        assert main(["replay", str(trace)]) == 0
        replay_out = capsys.readouterr().out
        assert "bit for bit" in replay_out
        # The fingerprint digest the replay prints matches the recording's.
        fingerprint = [
            line for line in record_out.splitlines() if "fingerprint" in line
        ][0]
        assert fingerprint in replay_out.splitlines()
        digest = [
            line for line in record_out.splitlines() if "outcome digest" in line
        ][0]
        assert digest in replay_out.splitlines()

    def test_record_cancel_scenario(self, tmp_path, capsys):
        trace, out = self._record(
            tmp_path, capsys, "--scenario", "cancel-mid-flight"
        )
        assert "cancel-mid-flight" in out
        assert "cancelled" in out
        assert main(["replay", str(trace)]) == 0
        assert "bit for bit" in capsys.readouterr().out

    def test_replay_tampered_trace_fails(self, tmp_path, capsys):
        trace, _ = self._record(tmp_path, capsys)
        text = trace.read_text()
        trace.write_text(text.replace('"positive"', '"negative"', 1))
        assert main(["replay", str(trace)]) == 2
        assert "trace unreadable" in capsys.readouterr().out

    def test_replay_truncated_trace_fails(self, tmp_path, capsys):
        trace, _ = self._record(tmp_path, capsys)
        lines = trace.read_text().splitlines()
        trace.write_text("\n".join(lines[:-1]) + "\n")
        assert main(["replay", str(trace)]) == 2
        assert "truncated" in capsys.readouterr().out

    def test_replay_golden_traces_from_cli(self, capsys):
        """The CI gate's CLI form: replay the checked-in goldens."""
        from pathlib import Path

        traces = Path(__file__).parent / "data" / "traces"
        for name in (
            "mixed_service.jsonl",
            "cancel_mid_flight.jsonl",
            "preadmission.jsonl",
        ):
            assert main(["replay", str(traces / name)]) == 0
            assert "bit for bit" in capsys.readouterr().out

    def test_record_preadmission_scenario(self, tmp_path, capsys):
        trace, out = self._record(
            tmp_path, capsys, "--scenario", "preadmission"
        )
        assert "preadmission" in out
        assert main(["replay", str(trace)]) == 0
        assert "bit for bit" in capsys.readouterr().out


class TestServeJournal:
    """`serve --journal` + `recover`: the CLI face of DESIGN.md §12."""

    def _digest_line(self, out: str) -> str:
        return [line for line in out.splitlines() if "digest" in line][-1]

    def test_serve_journal_then_recover_matches(self, tmp_path, capsys):
        journal = tmp_path / "serve.journal.jsonl"
        assert main(["serve", "--journal", str(journal), "--slots", "2"]) == 0
        serve_out = capsys.readouterr().out
        assert journal.exists()
        serve_digest = self._digest_line(serve_out).split()[-1]
        assert main(["recover", str(journal)]) == 0
        recover_out = capsys.readouterr().out
        assert "recovered 3 queries" in recover_out
        assert self._digest_line(recover_out).endswith(serve_digest)

    def test_recover_after_torn_crash(self, tmp_path, capsys):
        journal = tmp_path / "serve.journal.jsonl"
        assert main(["serve", "--journal", str(journal), "--slots", "2"]) == 0
        serve_digest = self._digest_line(capsys.readouterr().out).split()[-1]
        # Crash simulation: drop the journal tail, leave a torn write.
        lines = journal.read_bytes().split(b"\n")
        journal.write_bytes(b"\n".join(lines[:30]) + b"\n" + b'{"k":"ev","t')
        assert main(["recover", str(journal)]) == 0
        out = capsys.readouterr().out
        assert self._digest_line(out).endswith(serve_digest)
        assert "re-executed" in out

    def test_recover_empty_journal_fails(self, tmp_path, capsys):
        journal = tmp_path / "empty.journal.jsonl"
        journal.write_bytes(b"")
        assert main(["recover", str(journal)]) == 2
        assert "nothing to recover" in capsys.readouterr().out

    def test_journal_with_asyncio_rejected(self, tmp_path, capsys):
        journal = tmp_path / "serve.journal.jsonl"
        code = main(["serve", "--journal", str(journal), "--asyncio"])
        assert code == 2
        assert "drop --asyncio" in capsys.readouterr().out
        assert not journal.exists()
