"""Sharded worker pools + the multi-process shard router (DESIGN.md §14).

Three layers, bottom-up:

* pure units — :meth:`WorkerPool.partition` apportionment,
  rendezvous-hash placement (determinism, minimal disruption, weight
  rebalancing), per-shard seeds, RPC frame round-trips;
* one live 2-process router — submit/result/cancel across the process
  boundary, per-shard outcomes **bit-identical** (canonical JSON) to an
  in-process rebuild of the same shard recipe;
* the HTTP gateway served directly by the router — submit, poll,
  metrics, healthz and the 402 counter-offer all crossing the RPC.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.amt.pool import PoolConfig, WorkerPool
from repro.amt.trace import canonical_json
from repro.cluster.rpc import MAX_FRAME_BYTES, encode_frame, read_frame
from repro.cluster.shards import assign_shard, shard_names, shard_seed
from repro.tsa.app import movie_query
from repro.tsa.tweets import generate_tweets

SEED = 2012


# -- WorkerPool.partition -----------------------------------------------------


class TestPartition:
    def _pool(self, size=60):
        return WorkerPool.from_config(PoolConfig(size=size), seed=SEED)

    def test_disjoint_and_exhaustive(self):
        pool = self._pool()
        shards = pool.partition({"a": 1.0, "b": 1.0, "c": 1.0})
        ids = [p.worker_id for s in shards.values() for p in s.profiles]
        assert len(ids) == len(pool)
        assert len(set(ids)) == len(ids)
        assert sorted(ids) == sorted(p.worker_id for p in pool.profiles)

    def test_weights_apportion(self):
        shards = self._pool(60).partition({"big": 2.0, "small": 1.0})
        assert len(shards["big"]) == 40
        assert len(shards["small"]) == 20

    def test_deterministic(self):
        first = self._pool().partition({"a": 1.0, "b": 2.0})
        second = self._pool().partition({"a": 1.0, "b": 2.0})
        for name in ("a", "b"):
            assert [p.worker_id for p in first[name].profiles] == [
                p.worker_id for p in second[name].profiles
            ]

    def test_every_shard_gets_a_worker(self):
        shards = self._pool(4).partition(
            {"a": 1000.0, "b": 1.0, "c": 1.0, "d": 1.0}
        )
        assert all(len(s) >= 1 for s in shards.values())
        assert sum(len(s) for s in shards.values()) == 4

    def test_errors(self):
        pool = self._pool(3)
        with pytest.raises(ValueError):
            pool.partition({})
        with pytest.raises(ValueError):
            pool.partition({"a": 0.0})
        with pytest.raises(ValueError):
            pool.partition({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0})


# -- rendezvous placement -----------------------------------------------------


class TestAssignShard:
    WEIGHTS = {name: 1.0 for name in shard_names(4)}

    def test_deterministic(self):
        tenants = [f"tenant{i}" for i in range(50)]
        first = [assign_shard(t, self.WEIGHTS) for t in tenants]
        second = [assign_shard(t, self.WEIGHTS) for t in tenants]
        assert first == second

    def test_spreads_tenants(self):
        homes = {
            assign_shard(f"tenant{i}", self.WEIGHTS) for i in range(200)
        }
        assert homes == set(self.WEIGHTS)

    def test_minimal_disruption_on_shard_loss(self):
        """Removing one shard re-homes ONLY the tenants that lived on it."""
        tenants = [f"tenant{i}" for i in range(200)]
        before = {t: assign_shard(t, self.WEIGHTS) for t in tenants}
        dead = "shard2"
        survivors = {
            name: w for name, w in self.WEIGHTS.items() if name != dead
        }
        for tenant in tenants:
            after = assign_shard(tenant, survivors)
            if before[tenant] != dead:
                assert after == before[tenant]
            else:
                assert after != dead

    def test_tenant_weight_changes_rehome_deterministically(self):
        moved = 0
        for i in range(100):
            tenant = f"tenant{i}"
            light = assign_shard(tenant, self.WEIGHTS, tenant_weight=1.0)
            heavy = assign_shard(tenant, self.WEIGHTS, tenant_weight=4.0)
            again = assign_shard(tenant, self.WEIGHTS, tenant_weight=4.0)
            assert heavy == again
            if heavy != light:
                moved += 1
        assert moved > 0  # the weight is genuinely part of the hash key

    def test_shard_weight_biases_share(self):
        weights = {"big": 3.0, "small": 1.0}
        big = sum(
            1
            for i in range(400)
            if assign_shard(f"tenant{i}", weights) == "big"
        )
        assert 240 < big < 360  # ~300 expected at 3:1

    def test_no_shards_is_lookup_error(self):
        with pytest.raises(LookupError):
            assign_shard("acme", {})
        with pytest.raises(ValueError):
            assign_shard("acme", {"a": -1.0})


def test_shard_seed_stable_and_distinct():
    assert shard_seed(SEED, None) == SEED
    seeds = {shard_seed(SEED, name) for name in shard_names(8)}
    assert len(seeds) == 8
    assert shard_seed(SEED, "shard0") == shard_seed(SEED, "shard0")
    assert shard_seed(SEED + 1, "shard0") != shard_seed(SEED, "shard0")


# -- RPC framing --------------------------------------------------------------


class TestFraming:
    def test_roundtrip_and_eof(self):
        async def run():
            reader = asyncio.StreamReader()
            payload = {"id": 3, "method": "submit", "params": {"a": [1, 2]}}
            reader.feed_data(encode_frame(payload) + encode_frame({"b": 1}))
            reader.feed_eof()
            assert await read_frame(reader) == payload
            assert await read_frame(reader) == {"b": 1}
            assert await read_frame(reader) is None

        asyncio.run(run())

    def test_truncated_frame_reads_as_eof(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"id": 1})[:-2])
            reader.feed_eof()
            assert await read_frame(reader) is None

        asyncio.run(run())

    def test_size_guard(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ValueError):
                await read_frame(reader)

        asyncio.run(run())

    def test_non_object_frame_rejected(self):
        async def run():
            reader = asyncio.StreamReader()
            body = b"[1,2,3]"
            reader.feed_data(len(body).to_bytes(4, "big") + body)
            with pytest.raises(ValueError):
                await read_frame(reader)

        asyncio.run(run())


# -- the live router ----------------------------------------------------------


def _submissions():
    gold = generate_tweets(["gold-movie"], per_movie=8, seed=SEED + 1)
    tweets = generate_tweets(["rio", "solaris"], per_movie=6, seed=SEED + 2)
    inputs = dict(tweets=tweets, gold_tweets=gold, worker_count=5, batch_size=6)
    return [
        ("acme", movie_query("rio", 0.85), inputs),
        ("globex", movie_query("solaris", 0.85), inputs),
    ]


def test_router_matches_in_process_bit_for_bit():
    """Each shard's outcomes are canonical-JSON-identical to rebuilding
    that shard's recipe (pool slice + derived seed) in this process and
    replaying the same submissions — the scale-out determinism contract."""
    from repro.cluster import ShardRouter
    from repro.cluster.worker import handle_snapshot
    from repro.cluster.workloads import bench
    from repro.engine.aio import AsyncSchedulerService

    async def run():
        remote: dict[str, list] = {}
        homes: dict[str, str] = {}
        async with ShardRouter(2, workload="bench", seed=SEED) as router:
            await router.register_tenant("acme", priority=2.0)
            await router.register_tenant("globex", priority=1.0)
            for tenant, query, inputs in _submissions():
                service = router.route(tenant)
                homes[tenant] = service.name
                handle = await service.submit(
                    "twitter-sentiment", query, tenant=tenant, **inputs
                )
                result = await handle.result(timeout=120)
                assert handle.state.value == "done"
                assert result is not None and "report" in result
            for name in router.shard_order:
                remote[name] = await router[name].outcomes()
            # Sanity: with equal weights the two demo tenants land on
            # different shards, so each shard saw exactly one query.
            assert sorted(homes.values()) == ["shard0", "shard1"]
        return remote, homes

    remote, homes = asyncio.run(run())

    async def replay(shard: str, tenant: str) -> list:
        config = {
            "seed": SEED,
            "shard": shard,
            "shards": ["shard0", "shard1"],
            "weights": {"shard0": 1.0, "shard1": 1.0},
            "pool_size": bench.default_pool_size,
        }
        service = AsyncSchedulerService(bench(config).service(max_in_flight=4))
        service.register_tenant(
            tenant, priority=2.0 if tenant == "acme" else 1.0
        )
        for sub_tenant, query, inputs in _submissions():
            if sub_tenant != tenant:
                continue
            # ``reserve=True`` mirrors the RPC submit default — the plan
            # is priced at admission time on both sides of the wire.
            handle = service.submit(
                "twitter-sentiment", query, tenant=tenant, reserve=True, **inputs
            )
            await handle.result(timeout=120)
        snapshots = [handle_snapshot(h) for h in service.handles]
        await service.aclose()
        return snapshots

    for tenant, shard in homes.items():
        local = asyncio.run(replay(shard, tenant))
        assert canonical_json(local) == canonical_json(remote[shard])


def test_gateway_served_by_router():
    """GatewayApp speaks to shards over RPC: submit/poll/metrics/healthz
    and the 402 counter-offer all work unchanged."""
    from repro.cluster import ShardRouter
    from repro.gateway.app import GatewayApp
    from repro.gateway.auth import TokenAuth
    from repro.gateway.testing import InProcessClient

    gold = generate_tweets(["gold-movie"], per_movie=8, seed=SEED + 1)
    tweets = generate_tweets(["rio"], per_movie=6, seed=SEED + 2)

    async def run():
        async with ShardRouter(2, workload="bench", seed=SEED) as router:
            await router.register_tenant("acme", priority=2.0)
            await router.register_tenant("globex", priority=1.0, budget_cap=0.02)
            app = GatewayApp(
                router,
                TokenAuth({"acme-token": "acme", "globex-token": "globex"}),
                presets={
                    "demo": dict(
                        tweets=tweets, gold_tweets=gold,
                        worker_count=5, batch_size=6,
                    )
                },
            )
            client = InProcessClient(app, token="acme-token")
            body = {
                "job": "twitter-sentiment",
                "query": {
                    "keywords": ["rio"], "required_accuracy": 0.85,
                    "domain": ["positive", "neutral", "negative"],
                    "subject": "rio",
                },
                "inputs": {"$preset": "demo"},
            }
            response = await client.post("/v1/queries", body)
            assert response.status == 201
            payload = response.json()
            query_id = payload["id"]
            assert query_id.startswith("shard")
            assert "plan" in payload

            for _ in range(300):
                payload = (await client.get(f"/v1/queries/{query_id}")).json()
                if payload["progress"]["state"] == "done":
                    break
                await asyncio.sleep(0.05)
            assert payload["progress"]["state"] == "done"
            assert "result" in payload

            explain = await client.post("/v1/explain", body)
            assert explain.status == 200
            assert set(explain.json()) == {"service", "plan", "decision"}

            health = (await client.get("/v1/healthz")).json()
            assert set(health["services"]) == {"shard0", "shard1"}

            metrics = (await client.get("/v1/metrics")).json()
            shard = query_id.rsplit("-", 1)[0]
            entry = metrics["services"][shard]
            assert entry["alive"] is True
            assert entry["queries"].get("done", 0) >= 1
            assert entry["ledger"]["charged_assignments"] > 0

            # The counter-offer crosses the RPC: globex's cap refuses
            # the same submission with the full 402 payload.
            refused = await InProcessClient(app, token="globex-token").post(
                "/v1/queries", body
            )
            assert refused.status == 402
            refusal = refused.json()
            assert refusal["error"] == "plan-infeasible"
            assert "plan" in refusal and "decision" in refusal

    asyncio.run(run())


def test_router_weight_rebalance_rehomes_tenant():
    """set_tenant_weight deterministically recomputes the home shard;
    some weight moves the tenant, and the move is stable."""
    from repro.cluster import ShardRouter

    router = ShardRouter(4, workload="bench", seed=SEED)  # never started:
    # placement is pure math over the shard table, no processes needed.
    baseline = router.route("tenant-x").name
    moved_weight = None
    for weight in (2.0, 3.0, 4.0, 5.0, 7.0):
        if router.set_tenant_weight("tenant-x", weight) != baseline:
            moved_weight = weight
            break
    assert moved_weight is not None
    assert router.set_tenant_weight("tenant-x", moved_weight) != baseline
    router.set_tenant_weight("tenant-x", 1.0)
    assert router.route("tenant-x").name == baseline
