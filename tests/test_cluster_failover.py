"""Shard failure: ``kill -9`` a worker mid-workload (DESIGN.md §14).

Two contracts, by journal presence:

* **unjournaled** shard death — the router strands the shard's
  non-terminal handles as FAILED (``ShardDied``) instead of letting
  clients hang, marks the shard unroutable, and rendezvous re-homes its
  tenants to the survivors on their next request;
* **journaled** shard death — the router respawns the process on the
  same journal; recovery reattaches every handle by ``seq`` (the public
  query id survives), the interrupted query runs to completion, and the
  next submission continues the seq sequence.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import ShardRouter
from repro.cluster.rpc import ShardDied
from repro.tsa.app import movie_query
from repro.tsa.tweets import generate_tweets

SEED = 2012

#: Big enough that the query is still mid-flight when SIGKILL lands
#: (the kill is sent immediately after the submit ack).
SLOW_TWEETS = 300


def _inputs(per_movie: int):
    return dict(
        tweets=generate_tweets(["rio"], per_movie=per_movie, seed=SEED + 2),
        gold_tweets=generate_tweets(["gold-movie"], per_movie=8, seed=SEED + 1),
        worker_count=5,
        batch_size=4,
    )


async def _await_terminal(handle, timeout: float = 30.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout
    while not (handle.done or handle.stranded is not None):
        assert asyncio.get_running_loop().time() < deadline, (
            f"handle stuck {handle.state.value}"
        )
        await asyncio.sleep(0.05)


def test_unjournaled_kill_strands_handles_and_rehomes_tenants():
    async def run():
        async with ShardRouter(2, workload="bench", seed=SEED) as router:
            await router.register_tenant("acme", priority=2.0)
            home = router.route("acme")
            handle = await home.submit(
                "twitter-sentiment",
                movie_query("rio", 0.9),
                tenant="acme",
                **_inputs(SLOW_TWEETS),
            )
            assert not handle.done  # genuinely mid-workload
            router.kill_shard(home.name)
            await _await_terminal(handle)

            # The handle reports FAILED, never hangs.
            assert handle.state.value == "failed"
            assert isinstance(handle.stranded, ShardDied)
            with pytest.raises(ShardDied):
                await handle.result(timeout=1)

            # The dead shard is out of the routing table; the tenant's
            # new home is a survivor, and new work runs there.
            assert not home.routable
            survivor = router.route("acme")
            assert survivor.name != home.name
            replacement = await survivor.submit(
                "twitter-sentiment",
                movie_query("rio", 0.9),
                tenant="acme",
                **_inputs(6),
            )
            result = await replacement.result(timeout=120)
            assert replacement.state.value == "done"
            assert result is not None

            # Submitting straight to the dead shard reports the death
            # instead of hanging.
            with pytest.raises(ShardDied):
                await home.submit(
                    "twitter-sentiment",
                    movie_query("rio", 0.9),
                    tenant="acme",
                    **_inputs(6),
                )

    asyncio.run(run())


def test_journaled_kill_respawns_and_preserves_query_ids(tmp_path):
    async def run():
        base = str(tmp_path / "wal")
        async with ShardRouter(
            2, workload="bench", seed=SEED, journal=base
        ) as router:
            await router.register_tenant("acme", priority=2.0)
            home = router.route("acme")
            handle = await home.submit(
                "twitter-sentiment",
                movie_query("rio", 0.9),
                tenant="acme",
                **_inputs(SLOW_TWEETS),
            )
            seq = handle.seq
            assert not handle.done
            router.kill_shard(home.name)

            # Same handle object, same seq: respawn + journal recovery
            # finish the interrupted query behind the same public id.
            result = await handle.result(timeout=180)
            assert handle.seq == seq
            assert handle.state.value == "done"
            assert result is not None and "report" in result
            assert home.routable and home.alive

            # The seq sequence continues where the journal left off.
            follow_up = await home.submit(
                "twitter-sentiment",
                movie_query("rio", 0.9),
                tenant="acme",
                **_inputs(6),
            )
            assert follow_up.seq == seq + 1
            await follow_up.result(timeout=120)
            assert follow_up.state.value == "done"

    asyncio.run(run())
