"""Tests for cost-constrained planning (the §3.1 economics inverted)."""

from __future__ import annotations

import pytest

from repro.amt.pricing import PriceSchedule
from repro.core.budget import (
    max_accuracy_for_budget,
    max_workers_within_budget,
    plan_query,
)
from repro.core.prediction import (
    PredictionInfeasibleError,
    expected_majority_accuracy,
    refined_worker_count,
)

SCHEDULE = PriceSchedule(worker_reward=0.01, platform_fee=0.005)


class TestMaxWorkersWithinBudget:
    def test_exact_inversion(self):
        # $0.015 per assignment × 100 items × 1 window → $1.5 per worker.
        n = max_workers_within_budget(7.5, SCHEDULE, items_per_unit=100, window=1)
        assert n == 5
        assert SCHEDULE.query_cost(n, 100, 1) <= 7.5

    def test_rounds_down_to_odd(self):
        n = max_workers_within_budget(6.1, SCHEDULE, items_per_unit=100, window=1)
        assert n == 3  # could afford 4, rounded to odd 3

    def test_zero_when_unaffordable(self):
        assert max_workers_within_budget(0.5, SCHEDULE, 100, 1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            max_workers_within_budget(-1.0, SCHEDULE, 100, 1)
        with pytest.raises(ValueError):
            max_workers_within_budget(1.0, SCHEDULE, 0, 1)
        with pytest.raises(ValueError):
            max_workers_within_budget(1.0, PriceSchedule(0.0, 0.0), 100, 1)


class TestMaxAccuracyForBudget:
    def test_matches_theorem1_at_affordable_n(self):
        acc = max_accuracy_for_budget(7.5, SCHEDULE, 0.7, 100, 1)
        assert acc == pytest.approx(expected_majority_accuracy(5, 0.7))

    def test_monotone_in_budget(self):
        accs = [
            max_accuracy_for_budget(b, SCHEDULE, 0.7, 100, 1)
            for b in (2.0, 5.0, 10.0, 30.0)
        ]
        assert accs == sorted(accs)

    def test_infeasible_budget(self):
        with pytest.raises(PredictionInfeasibleError, match="affords no worker"):
            max_accuracy_for_budget(0.01, SCHEDULE, 0.7, 100, 1)

    def test_infeasible_mu(self):
        with pytest.raises(PredictionInfeasibleError, match="0.5"):
            max_accuracy_for_budget(100.0, SCHEDULE, 0.5, 100, 1)


class TestPlanQuery:
    def test_accuracy_limited_plan(self):
        plan = plan_query(0.9, budget=1000.0, schedule=SCHEDULE,
                          mean_accuracy=0.7, items_per_unit=100, window=1)
        assert plan.limited_by == "accuracy"
        assert plan.workers_per_item == refined_worker_count(0.9, 0.7)
        assert plan.expected_accuracy >= 0.9
        assert plan.projected_cost <= 1000.0

    def test_budget_limited_plan(self):
        plan = plan_query(0.99, budget=5.0, schedule=SCHEDULE,
                          mean_accuracy=0.7, items_per_unit=100, window=1)
        assert plan.limited_by == "budget"
        assert plan.projected_cost <= 5.0
        assert plan.expected_accuracy < 0.99

    def test_budget_limited_is_honest_about_accuracy(self):
        plan = plan_query(0.95, budget=5.0, schedule=SCHEDULE,
                          mean_accuracy=0.7, items_per_unit=100, window=1)
        assert plan.expected_accuracy == pytest.approx(
            expected_majority_accuracy(plan.workers_per_item, 0.7)
        )

    def test_unrunnable_rejected(self):
        with pytest.raises(PredictionInfeasibleError):
            plan_query(0.9, budget=0.001, schedule=SCHEDULE,
                       mean_accuracy=0.7, items_per_unit=100, window=1)

    def test_window_scaling(self):
        one = plan_query(0.9, budget=1e6, schedule=SCHEDULE,
                         mean_accuracy=0.7, items_per_unit=100, window=1)
        day = plan_query(0.9, budget=1e6, schedule=SCHEDULE,
                         mean_accuracy=0.7, items_per_unit=100, window=24)
        assert day.projected_cost == pytest.approx(24 * one.projected_cost)
