"""Tests for worker/answer confidence (Definitions 2-3, Equation 4)."""

from __future__ import annotations

import math

import pytest

from repro.core.confidence import (
    accuracy_from_confidence,
    answer_confidences,
    answer_log_weights,
    confidences_from_log_weights,
    worker_confidence,
)
from repro.core.domain import AnswerDomain
from repro.core.types import WorkerAnswer


class TestWorkerConfidence:
    def test_definition_2_closed_form(self):
        # c = ln((m-1) a / (1-a))
        assert worker_confidence(0.73, 3) == pytest.approx(
            math.log(2 * 0.73 / 0.27)
        )

    def test_uniform_guesser_has_zero_confidence(self):
        for m in (2, 3, 5, 10):
            assert worker_confidence(1.0 / m, m) == pytest.approx(0.0, abs=1e-9)

    def test_monotone_in_accuracy(self):
        cs = [worker_confidence(a, 3) for a in (0.2, 0.4, 0.6, 0.8, 0.95)]
        assert cs == sorted(cs)

    def test_extremes_finite(self):
        assert math.isfinite(worker_confidence(0.0, 3))
        assert math.isfinite(worker_confidence(1.0, 3))

    def test_m_validation(self):
        with pytest.raises(ValueError):
            worker_confidence(0.5, 1)

    def test_inverse(self):
        for a in (0.1, 0.33, 0.5, 0.77, 0.99):
            for m in (2, 3, 7):
                c = worker_confidence(a, m)
                assert accuracy_from_confidence(c, m) == pytest.approx(a, rel=1e-9)


class TestAnswerLogWeights:
    def test_dense_over_domain(self, pos_neu_neg):
        obs = [WorkerAnswer("w1", "pos", 0.6)]
        weights = answer_log_weights(obs, pos_neu_neg)
        assert set(weights) == {"pos", "neu", "neg"}
        assert weights["neu"] == 0.0
        assert weights["neg"] == 0.0

    def test_sums_per_answer(self, pos_neu_neg):
        obs = [WorkerAnswer("w1", "pos", 0.6), WorkerAnswer("w2", "pos", 0.7)]
        weights = answer_log_weights(obs, pos_neu_neg)
        expected = worker_confidence(0.6, 3) + worker_confidence(0.7, 3)
        assert weights["pos"] == pytest.approx(expected)

    def test_out_of_domain_rejected(self, pos_neu_neg):
        obs = [WorkerAnswer("w1", "maybe", 0.6)]
        with pytest.raises(ValueError, match="outside"):
            answer_log_weights(obs, pos_neu_neg)


class TestAnswerConfidences:
    def test_paper_table4_exact(self, pos_neu_neg):
        obs = [
            WorkerAnswer("w1", "pos", 0.54),
            WorkerAnswer("w2", "pos", 0.31),
            WorkerAnswer("w3", "neu", 0.49),
            WorkerAnswer("w4", "neg", 0.73),
            WorkerAnswer("w5", "pos", 0.46),
        ]
        rho = answer_confidences(obs, pos_neu_neg)
        assert rho["pos"] == pytest.approx(0.329, abs=5e-4)
        assert rho["neu"] == pytest.approx(0.176, abs=5e-4)
        assert rho["neg"] == pytest.approx(0.495, abs=5e-4)

    def test_sums_to_one_closed_domain(self, pos_neu_neg):
        obs = [WorkerAnswer("w1", "pos", 0.8), WorkerAnswer("w2", "neg", 0.6)]
        rho = answer_confidences(obs, pos_neu_neg)
        assert sum(rho.values()) == pytest.approx(1.0)

    def test_open_domain_reserves_mass_for_hidden_answers(self):
        domain = AnswerDomain(labels=("a", "b"), m=5, closed_domain=False)
        obs = [WorkerAnswer("w1", "a", 0.8)]
        rho = answer_confidences(obs, domain)
        # 3 hidden answers hold e^0 weight each → labels sum below 1.
        assert sum(rho.values()) < 1.0
        hidden_mass = 1.0 - sum(rho.values())
        assert hidden_mass > 0.0

    def test_high_accuracy_minority_beats_low_accuracy_majority(self, pos_neu_neg):
        obs = [
            WorkerAnswer("w1", "pos", 0.35),
            WorkerAnswer("w2", "pos", 0.35),
            WorkerAnswer("w3", "neg", 0.95),
        ]
        rho = answer_confidences(obs, pos_neu_neg)
        assert rho["neg"] > rho["pos"]

    def test_many_workers_no_overflow(self, pos_neu_neg):
        obs = [WorkerAnswer(f"w{i}", "pos", 0.95) for i in range(500)]
        rho = answer_confidences(obs, pos_neu_neg)
        assert rho["pos"] == pytest.approx(1.0)
        assert all(math.isfinite(v) for v in rho.values())

    def test_below_uniform_votes_count_against(self, pos_neu_neg):
        # A worker worse than uniform (a < 1/m) has negative confidence:
        # their vote lowers the voted answer below unvoted ones.
        obs = [WorkerAnswer("w1", "pos", 0.1)]
        rho = answer_confidences(obs, pos_neu_neg)
        assert rho["pos"] < rho["neu"]


class TestConfidencesFromLogWeights:
    def test_matches_answer_confidences(self, pos_neu_neg):
        obs = [WorkerAnswer("w1", "pos", 0.7), WorkerAnswer("w2", "neu", 0.6)]
        direct = answer_confidences(obs, pos_neu_neg)
        via_weights = confidences_from_log_weights(
            answer_log_weights(obs, pos_neu_neg), pos_neu_neg
        )
        for label in pos_neu_neg.labels:
            assert direct[label] == pytest.approx(via_weights[label])

    def test_too_many_labels_rejected(self):
        domain = AnswerDomain.closed(("a", "b"))
        with pytest.raises(ValueError, match="exceed"):
            confidences_from_log_weights({"a": 0.0, "b": 0.0, "c": 0.0}, domain)
