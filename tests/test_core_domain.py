"""Tests for answer domains and Theorem 5's effective-m estimation."""

from __future__ import annotations

import pytest

from repro.core.domain import (
    AnswerDomain,
    estimate_effective_m,
    lemma1_lower_bound,
    lemma2_lower_bound,
)


class TestLemma1:
    def test_vacuous_for_k_le_1(self):
        assert lemma1_lower_bound(0) is None
        assert lemma1_lower_bound(1) is None

    def test_k2_value(self):
        # H_1 = 1, (k-1)(eps*k)^{1/(k-1)} = 0.1 → bound = 1/0.9.
        assert lemma1_lower_bound(2, epsilon=0.05) == pytest.approx(1.0 / 0.9)

    def test_k3_value(self):
        # H_2 = 1.5, 2*(0.15)^{1/2} ≈ 0.7746 → 2/0.72540.
        bound = lemma1_lower_bound(3, epsilon=0.05)
        assert bound == pytest.approx(2.0 / (1.5 - 2.0 * 0.15**0.5), rel=1e-9)

    def test_vacuous_when_denominator_nonpositive(self):
        # k = 5 at eps 0.05: H_4 < 4*(0.25)^{1/4}.
        assert lemma1_lower_bound(5, epsilon=0.05) is None

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            lemma1_lower_bound(3, epsilon=0.0)
        with pytest.raises(ValueError):
            lemma1_lower_bound(3, epsilon=1.0)

    def test_negative_k(self):
        with pytest.raises(ValueError):
            lemma1_lower_bound(-1)


class TestLemma2:
    def test_vacuous_for_k_le_1(self):
        assert lemma2_lower_bound(1) is None

    def test_k2_value(self):
        # 1 - 2*sqrt(0.05) ≈ 0.5528 → 1/0.5528.
        assert lemma2_lower_bound(2, epsilon=0.05) == pytest.approx(
            1.0 / (1.0 - 2.0 * 0.05**0.5), rel=1e-9
        )

    def test_vacuous_for_large_k(self):
        assert lemma2_lower_bound(3, epsilon=0.05) is None
        assert lemma2_lower_bound(10, epsilon=0.05) is None


class TestEstimateEffectiveM:
    def test_floor_at_observed_count(self):
        for k in range(1, 10):
            assert estimate_effective_m(k) >= max(k, 2)

    def test_known_values_at_paper_epsilon(self):
        assert estimate_effective_m(1) == 2
        assert estimate_effective_m(2) == 2
        assert estimate_effective_m(3) == 3
        # k=4: lemma 1 still yields a finite (if loose) bound of ~38.
        assert estimate_effective_m(4) == 39
        # k=5: both lemmas vacuous → falls back to k.
        assert estimate_effective_m(5) == 5

    def test_known_domain_caps(self):
        assert estimate_effective_m(4, known_domain_size=3) == 3
        assert estimate_effective_m(2, known_domain_size=10) == 2

    def test_known_domain_must_be_ge_2(self):
        with pytest.raises(ValueError):
            estimate_effective_m(2, known_domain_size=1)


class TestAnswerDomainClosed:
    def test_m_is_label_count(self, tsa_domain):
        assert tsa_domain.m == 3
        assert tsa_domain.closed_domain
        assert tsa_domain.unobserved_label_count == 0

    def test_needs_two_labels(self):
        with pytest.raises(ValueError):
            AnswerDomain.closed(("only",))

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AnswerDomain.closed(("a", "a"))

    def test_with_label_rejected_outside_closed(self, tsa_domain):
        with pytest.raises(ValueError, match="closed domain"):
            tsa_domain.with_label("maybe")

    def test_with_label_noop_for_member(self, tsa_domain):
        assert tsa_domain.with_label("neutral") is tsa_domain


class TestAnswerDomainOpen:
    def test_from_observed_preserves_order(self):
        domain = AnswerDomain.open_ended(["b", "a", "b", "c"])
        assert domain.labels == ("b", "a", "c")
        assert not domain.closed_domain

    def test_m_at_least_labels(self):
        domain = AnswerDomain.open_ended(["x", "y", "z", "w"])
        assert domain.m >= 4

    def test_grows_with_new_label(self):
        domain = AnswerDomain.open_ended(["x", "y"])
        grown = domain.with_label("z")
        assert "z" in grown.labels
        assert grown.m >= domain.m

    def test_consistency_validation(self):
        with pytest.raises(ValueError, match="smaller than"):
            AnswerDomain(labels=("a", "b", "c"), m=2, closed_domain=False)
        with pytest.raises(ValueError, match="≥ 2"):
            AnswerDomain(labels=("a",), m=1, closed_domain=False)
        with pytest.raises(ValueError, match="closed domain declares"):
            AnswerDomain(labels=("a", "b"), m=3, closed_domain=True)
