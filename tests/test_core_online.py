"""Tests for online aggregation (paper §4.2, Theorem 6, Algorithm 5)."""

from __future__ import annotations

import pytest

from repro.core.confidence import answer_confidences
from repro.core.domain import AnswerDomain
from repro.core.online import OnlineAggregator, run_online
from repro.core.termination import ExpMax, MinMax
from repro.core.types import WorkerAnswer


def _answers(*specs: tuple[str, float]) -> list[WorkerAnswer]:
    return [
        WorkerAnswer(f"w{i}", answer, acc) for i, (answer, acc) in enumerate(specs)
    ]


class TestTheorem6:
    def test_partial_confidence_equals_equation4_on_partial_obs(self, pos_neu_neg):
        """Theorem 6: the online confidence of a partial observation is just
        Equation 4 on that observation — no completion marginalisation."""
        answers = _answers(("pos", 0.7), ("neg", 0.8), ("pos", 0.6), ("neu", 0.55))
        agg = OnlineAggregator(pos_neu_neg, hired_workers=10, mean_accuracy=0.7)
        for k, wa in enumerate(answers, start=1):
            agg.submit(wa)
            online = agg.confidences()
            direct = answer_confidences(answers[:k], pos_neu_neg)
            for label in pos_neu_neg.labels:
                assert online[label] == pytest.approx(direct[label])


class TestOnlineAggregator:
    def test_trajectory_records_every_arrival(self, pos_neu_neg):
        agg = OnlineAggregator(pos_neu_neg, hired_workers=3, mean_accuracy=0.7)
        for wa in _answers(("pos", 0.7), ("pos", 0.7), ("neg", 0.9)):
            agg.submit(wa)
        assert [p.answers_received for p in agg.trajectory] == [1, 2, 3]
        assert agg.remaining_workers == 0

    def test_more_answers_than_hired_rejected(self, pos_neu_neg):
        agg = OnlineAggregator(pos_neu_neg, hired_workers=1, mean_accuracy=0.7)
        agg.submit(_answers(("pos", 0.7))[0])
        with pytest.raises(ValueError, match="more answers"):
            agg.submit(_answers(("neg", 0.7))[0])

    def test_open_domain_grows(self):
        domain = AnswerDomain.open_ended(["a", "b"])
        agg = OnlineAggregator(domain, hired_workers=3, mean_accuracy=0.7)
        agg.submit(WorkerAnswer("w1", "c", 0.8))
        assert "c" in agg.domain.labels

    def test_terminates_when_all_received(self, pos_neu_neg):
        agg = OnlineAggregator(pos_neu_neg, hired_workers=1, mean_accuracy=0.7)
        agg.submit(WorkerAnswer("w1", "pos", 0.7))
        assert agg.should_terminate()

    def test_no_strategy_waits_for_all(self, pos_neu_neg):
        agg = OnlineAggregator(pos_neu_neg, hired_workers=5, mean_accuracy=0.7)
        agg.submit(WorkerAnswer("w1", "pos", 0.99))
        assert not agg.should_terminate()

    def test_snapshot_requires_answer(self, pos_neu_neg):
        agg = OnlineAggregator(pos_neu_neg, hired_workers=5, mean_accuracy=0.7)
        with pytest.raises(ValueError):
            agg.snapshot()

    def test_verdict_is_argmax(self, pos_neu_neg):
        agg = OnlineAggregator(pos_neu_neg, hired_workers=2, mean_accuracy=0.7)
        agg.submit(WorkerAnswer("w1", "neg", 0.9))
        verdict = agg.verdict()
        assert verdict.answer == "neg"
        assert verdict.method == "verification-online"

    def test_invalid_construction(self, pos_neu_neg):
        with pytest.raises(ValueError):
            OnlineAggregator(pos_neu_neg, hired_workers=0, mean_accuracy=0.7)
        with pytest.raises(ValueError):
            OnlineAggregator(pos_neu_neg, hired_workers=3, mean_accuracy=1.4)


class TestRunOnline:
    def test_consumes_all_without_strategy(self, pos_neu_neg):
        answers = _answers(("pos", 0.7), ("neg", 0.6), ("pos", 0.8))
        result = run_online(answers, pos_neu_neg, mean_accuracy=0.7)
        assert result.answers_used == 3
        assert not result.terminated_early
        assert result.verdict.answer == "pos"

    def test_expmax_stops_early_on_unanimity(self, pos_neu_neg):
        # 20 unanimous high-confidence answers: ExpMax must fire before
        # the last one.
        answers = _answers(*(("pos", 0.85) for _ in range(21)))
        result = run_online(answers, pos_neu_neg, mean_accuracy=0.7, strategy=ExpMax())
        assert result.terminated_early
        assert result.answers_used < 21
        assert result.verdict.answer == "pos"

    def test_minmax_more_conservative_than_expmax(self, pos_neu_neg):
        answers = _answers(*(("pos", 0.8) for _ in range(15)))
        minmax = run_online(answers, pos_neu_neg, mean_accuracy=0.7, strategy=MinMax())
        expmax = run_online(answers, pos_neu_neg, mean_accuracy=0.7, strategy=ExpMax())
        assert minmax.answers_used >= expmax.answers_used

    def test_minmax_stability_against_adversarial_tail(self, pos_neu_neg):
        """Once MinMax fires, no completion by the remaining workers (at
        the assumed accuracy) can change the winner — the paper's
        stability claim, checked constructively."""
        mu = 0.7
        answers = _answers(*(("pos", 0.8) for _ in range(15)))
        result = run_online(answers, pos_neu_neg, mean_accuracy=mu, strategy=MinMax())
        assert result.terminated_early
        used = result.answers_used
        remaining = len(answers) - used
        # Adversarial completion: everyone else votes the runner-up at mu.
        scores = result.verdict.scores
        runner_up = max(
            (lab for lab in pos_neu_neg.labels if lab != result.verdict.answer),
            key=lambda lab: scores[lab],
        )
        adversarial = list(answers[:used]) + [
            WorkerAnswer(f"adv{i}", runner_up, mu) for i in range(remaining)
        ]
        final = answer_confidences(adversarial, pos_neu_neg)
        best = max(pos_neu_neg.labels, key=lambda lab: final[lab])
        assert best == result.verdict.answer

    def test_hired_workers_validation(self, pos_neu_neg):
        answers = _answers(("pos", 0.7), ("neg", 0.6))
        with pytest.raises(ValueError):
            run_online(answers, pos_neu_neg, mean_accuracy=0.7, hired_workers=1)

    def test_empty_rejected(self, pos_neu_neg):
        with pytest.raises(ValueError):
            run_online([], pos_neu_neg, mean_accuracy=0.7)
