"""Tests for the prediction model (paper §3, Theorems 1-3, Algorithms 2-3)."""

from __future__ import annotations

import math

import pytest

from repro.core.prediction import (
    MAX_WORKERS,
    PredictionInfeasibleError,
    WorkerCountPredictor,
    conservative_worker_count,
    expected_majority_accuracy,
    refined_worker_count,
)
from repro.util.stats import majority_probability


class TestConservativeWorkerCount:
    def test_is_odd(self):
        for c in (0.65, 0.8, 0.9, 0.99):
            for mu in (0.6, 0.7, 0.85):
                assert conservative_worker_count(c, mu) % 2 == 1

    def test_satisfies_chernoff_bound(self):
        # n ≥ -ln(1-C) / (2(mu-1/2)^2) must hold exactly.
        for c in (0.65, 0.8, 0.95, 0.99):
            for mu in (0.55, 0.7, 0.9):
                n = conservative_worker_count(c, mu)
                bound = -math.log(1.0 - c) / (2.0 * (mu - 0.5) ** 2)
                assert n >= bound

    def test_dominates_paper_rounding(self):
        # The paper's printed formula 2*floor(.../4(mu-1/2)^2)+1 can fall
        # below the Chernoff requirement; ours never returns less than the
        # requirement and never exceeds the paper's value by more than 2.
        for c in (0.65, 0.75, 0.9, 0.99):
            for mu in (0.6, 0.7, 0.8):
                ours = conservative_worker_count(c, mu)
                paper = 2 * math.floor(
                    -math.log(1.0 - c) / (4.0 * (mu - 0.5) ** 2)
                ) + 1
                assert paper - 2 <= ours <= paper + 2

    def test_monotone_in_required_accuracy(self):
        ns = [conservative_worker_count(c, 0.7) for c in (0.6, 0.7, 0.8, 0.9, 0.99)]
        assert ns == sorted(ns)

    def test_decreasing_in_mu(self):
        ns = [conservative_worker_count(0.9, mu) for mu in (0.55, 0.65, 0.75, 0.9)]
        assert ns == sorted(ns, reverse=True)

    def test_infeasible_mu(self):
        with pytest.raises(PredictionInfeasibleError, match="0.5"):
            conservative_worker_count(0.9, 0.5)
        with pytest.raises(PredictionInfeasibleError):
            conservative_worker_count(0.9, 0.3)

    def test_certainty_rejected(self):
        with pytest.raises(PredictionInfeasibleError, match="unattainable"):
            conservative_worker_count(1.0, 0.9)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            conservative_worker_count(0.0, 0.7)
        with pytest.raises(ValueError):
            conservative_worker_count(0.9, 1.2)

    def test_ceiling_guard(self):
        # mu barely above 1/2 with extreme C explodes past the ceiling.
        with pytest.raises(PredictionInfeasibleError, match="ceiling"):
            conservative_worker_count(1 - 1e-9, 0.5001)
        assert MAX_WORKERS > 0


class TestRefinedWorkerCount:
    def test_satisfies_requirement(self):
        for c in (0.65, 0.8, 0.9, 0.95, 0.99):
            for mu in (0.6, 0.7, 0.85):
                n = refined_worker_count(c, mu)
                assert expected_majority_accuracy(n, mu) >= c

    def test_minimality(self):
        # The returned n is the smallest odd count meeting the bar.
        for c in (0.65, 0.8, 0.9, 0.95):
            for mu in (0.6, 0.7, 0.85):
                n = refined_worker_count(c, mu)
                if n > 1:
                    assert expected_majority_accuracy(n - 2, mu) < c

    def test_matches_bruteforce(self):
        for c in (0.7, 0.9):
            for mu in (0.62, 0.75):
                n = 1
                while majority_probability(n, mu) < c:
                    n += 2
                assert refined_worker_count(c, mu) == n

    def test_never_exceeds_conservative(self):
        for c in (0.65, 0.85, 0.99):
            for mu in (0.58, 0.7, 0.9):
                assert refined_worker_count(c, mu) <= conservative_worker_count(c, mu)

    def test_paper_figure6_halving(self):
        # Figure 6: the refined estimate is roughly half (or less) of the
        # conservative one across the sweep at practical mu.
        for c in (0.75, 0.85, 0.95, 0.99):
            refined = refined_worker_count(c, 0.7)
            conservative = conservative_worker_count(c, 0.7)
            assert refined <= 0.55 * conservative + 1

    def test_is_odd(self):
        for c in (0.66, 0.77, 0.88, 0.99):
            assert refined_worker_count(c, 0.7) % 2 == 1


class TestExpectedMajorityAccuracy:
    def test_equals_util_majority_probability(self):
        assert expected_majority_accuracy(9, 0.7) == majority_probability(9, 0.7)


class TestWorkerCountPredictor:
    def test_refined_default(self):
        p = WorkerCountPredictor(mean_accuracy=0.7)
        assert p.predict(0.9) == refined_worker_count(0.9, 0.7)

    def test_conservative_mode(self):
        p = WorkerCountPredictor(mean_accuracy=0.7, refined=False)
        assert p.predict(0.9) == conservative_worker_count(0.9, 0.7)

    def test_expected_accuracy_and_floor(self):
        p = WorkerCountPredictor(mean_accuracy=0.75)
        n = p.predict(0.9)
        assert p.expected_accuracy(n) >= 0.9
        assert p.chernoff_floor(n) <= p.expected_accuracy(n)

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            WorkerCountPredictor(mean_accuracy=1.5)
