"""Tests for §4.3 result presentation (h scoring, reports, reasons)."""

from __future__ import annotations

import pytest

from repro.core.presentation import (
    OpinionReport,
    QuestionOutcome,
    build_report,
    h_score,
)
from repro.core.types import Verdict, WorkerAnswer


def _accepted(qid: str, answer: str, observation=()) -> QuestionOutcome:
    return QuestionOutcome(
        question_id=qid,
        verdict=Verdict(answer=answer, confidence=0.9, scores={answer: 0.9}),
        accepted=True,
        observation=observation,
    )


def _open(qid: str, scores: dict[str, float]) -> QuestionOutcome:
    return QuestionOutcome(
        question_id=qid,
        verdict=Verdict(answer=None, confidence=None, scores=scores),
        accepted=False,
    )


class TestHScore:
    def test_accepted_unit_vote(self):
        outcome = _accepted("t1", "pos")
        assert h_score(outcome, "pos") == 1.0
        assert h_score(outcome, "neg") == 0.0

    def test_open_question_uses_confidence(self):
        outcome = _open("t1", {"pos": 0.6, "neg": 0.4})
        assert h_score(outcome, "pos") == pytest.approx(0.6)
        assert h_score(outcome, "neg") == pytest.approx(0.4)

    def test_unknown_label_scores_zero(self):
        outcome = _open("t1", {"pos": 0.6})
        assert h_score(outcome, "neu") == 0.0


class TestBuildReport:
    def test_percentages(self, pos_neu_neg):
        outcomes = [
            _accepted("t1", "pos"),
            _accepted("t2", "pos"),
            _accepted("t3", "neg"),
            _open("t4", {"pos": 0.5, "neu": 0.25, "neg": 0.25}),
        ]
        report = build_report("Movie", outcomes, pos_neu_neg)
        assert report.percentage("pos") == pytest.approx((1 + 1 + 0 + 0.5) / 4)
        assert report.percentage("neg") == pytest.approx((1 + 0.25) / 4)
        assert report.question_count == 4

    def test_reasons_most_frequent_first(self, pos_neu_neg):
        obs = [
            WorkerAnswer("w1", "pos", 0.7, keywords=("plot", "cast")),
            WorkerAnswer("w2", "pos", 0.7, keywords=("plot",)),
            WorkerAnswer("w3", "neg", 0.7, keywords=("ending",)),
        ]
        outcomes = [_accepted("t1", "pos", observation=obs)]
        report = build_report("Movie", outcomes, pos_neu_neg)
        pos_row = next(r for r in report.rows if r.label == "pos")
        assert pos_row.reasons[0] == "plot"
        neg_row = next(r for r in report.rows if r.label == "neg")
        assert neg_row.reasons == ("ending",)

    def test_render_contains_percentages(self, pos_neu_neg):
        report = build_report("Movie", [_accepted("t1", "pos")], pos_neu_neg)
        text = report.render()
        assert "Movie" in text
        assert "100.0%" in text

    def test_unknown_label_percentage_zero(self, pos_neu_neg):
        report = build_report("Movie", [_accepted("t1", "pos")], pos_neu_neg)
        assert report.percentage("nonexistent") == 0.0

    def test_empty_outcomes_rejected(self, pos_neu_neg):
        with pytest.raises(ValueError):
            build_report("Movie", [], pos_neu_neg)

    def test_report_type(self, pos_neu_neg):
        report = build_report("Movie", [_accepted("t1", "neu")], pos_neu_neg)
        assert isinstance(report, OpinionReport)
        assert [r.label for r in report.rows] == list(pos_neu_neg.labels)
