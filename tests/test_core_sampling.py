"""Tests for gold-sampling accuracy estimation (paper §3.3, Algorithm 4)."""

from __future__ import annotations

import pytest

from repro.core.sampling import (
    GoldQuestion,
    SampledQuestion,
    WorkerAccuracyEstimator,
    compose_hit_questions,
    score_gold_answers,
)
from repro.util.rng import substream


def _gold_pool(n: int) -> list[GoldQuestion]:
    return [GoldQuestion(question_id=f"g{i}", truth="a") for i in range(n)]


class TestSampledQuestion:
    def test_gold_needs_truth(self):
        with pytest.raises(ValueError, match="lacks a truth"):
            SampledQuestion(question_id="q", payload=None, is_gold=True)

    def test_real_must_not_carry_truth(self):
        with pytest.raises(ValueError, match="must not carry"):
            SampledQuestion(question_id="q", payload=None, is_gold=False, truth="a")


class TestComposeHitQuestions:
    def test_gold_share_matches_alpha(self):
        rng = substream(1, "compose")
        real = [(f"r{i}", f"payload{i}") for i in range(80)]
        slots = compose_hit_questions(real, _gold_pool(40), 0.2, rng)
        gold = [s for s in slots if s.is_gold]
        # alpha*B/(1-alpha) = 0.2*80/0.8 = 20 → gold is 20 of 100 slots.
        assert len(gold) == 20
        assert len(slots) == 100

    def test_zero_rate_means_no_gold(self):
        rng = substream(1, "compose")
        slots = compose_hit_questions([("r0", None)], _gold_pool(5), 0.0, rng)
        assert all(not s.is_gold for s in slots)

    def test_shuffle_is_deterministic(self):
        real = [(f"r{i}", None) for i in range(30)]
        a = compose_hit_questions(real, _gold_pool(30), 0.2, substream(5, "x"))
        b = compose_hit_questions(real, _gold_pool(30), 0.2, substream(5, "x"))
        assert [s.question_id for s in a] == [s.question_id for s in b]

    def test_gold_not_all_at_end(self):
        real = [(f"r{i}", None) for i in range(40)]
        slots = compose_hit_questions(real, _gold_pool(30), 0.2, substream(9, "x"))
        gold_positions = [i for i, s in enumerate(slots) if s.is_gold]
        assert gold_positions != list(range(len(slots) - len(gold_positions), len(slots)))

    def test_insufficient_pool_rejected(self):
        real = [(f"r{i}", None) for i in range(80)]
        with pytest.raises(ValueError, match="pool has"):
            compose_hit_questions(real, _gold_pool(3), 0.2, substream(1, "x"))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            compose_hit_questions([], _gold_pool(1), 1.0, substream(1, "x"))


class TestWorkerAccuracyEstimator:
    def test_raw_rate_no_smoothing(self):
        est = WorkerAccuracyEstimator()
        for correct in (True, True, False, True):
            est.record("w", correct)
        assert est.accuracy("w") == pytest.approx(0.75)
        assert est.observations("w") == 4

    def test_unseen_worker_gets_prior(self):
        est = WorkerAccuracyEstimator(prior_accuracy=0.6)
        assert est.accuracy("ghost") == 0.6

    def test_smoothing_pulls_toward_prior(self):
        est = WorkerAccuracyEstimator(prior_accuracy=0.5, smoothing=2.0)
        est.record("w", True)
        # (1 + 2*0.5) / (1 + 2) = 2/3 instead of raw 1.0.
        assert est.accuracy("w") == pytest.approx(2.0 / 3.0)

    def test_mean_accuracy(self):
        est = WorkerAccuracyEstimator()
        est.record("a", True)
        est.record("b", False)
        assert est.mean_accuracy() == pytest.approx(0.5)

    def test_mean_accuracy_prior_fallback(self):
        est = WorkerAccuracyEstimator(prior_accuracy=0.55)
        assert est.mean_accuracy() == 0.55

    def test_as_mapping(self):
        est = WorkerAccuracyEstimator()
        est.record("a", True)
        assert est.as_mapping() == {"a": 1.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerAccuracyEstimator(prior_accuracy=1.2)
        with pytest.raises(ValueError):
            WorkerAccuracyEstimator(smoothing=-1.0)


class TestScoreGoldAnswers:
    def test_algorithm4_tallies(self):
        questions = [
            SampledQuestion("g1", None, True, truth="a"),
            SampledQuestion("g2", None, True, truth="b"),
            SampledQuestion("r1", "payload", False),
        ]
        est = WorkerAccuracyEstimator()
        result = score_gold_answers(
            questions,
            {
                "w1": {"g1": "a", "g2": "b", "r1": "whatever"},
                "w2": {"g1": "a", "g2": "x", "r1": "whatever"},
            },
            est,
        )
        assert result["w1"] == pytest.approx(1.0)
        assert result["w2"] == pytest.approx(0.5)
        # Real questions never enter the tally.
        assert est.observations("w1") == 2

    def test_skipped_gold_not_counted(self):
        questions = [SampledQuestion("g1", None, True, truth="a")]
        est = WorkerAccuracyEstimator(prior_accuracy=0.5)
        score_gold_answers(questions, {"w": {}}, est)
        assert est.observations("w") == 0
        assert est.accuracy("w") == 0.5

    def test_estimator_accumulates_across_hits(self):
        est = WorkerAccuracyEstimator()
        q1 = [SampledQuestion("g1", None, True, truth="a")]
        q2 = [SampledQuestion("g2", None, True, truth="a")]
        score_gold_answers(q1, {"w": {"g1": "a"}}, est)
        score_gold_answers(q2, {"w": {"g2": "x"}}, est)
        assert est.accuracy("w") == pytest.approx(0.5)
