"""Tests for the §4.2.2 early-termination strategies."""

from __future__ import annotations

import math

import pytest

from repro.core.confidence import worker_confidence
from repro.core.domain import AnswerDomain
from repro.core.termination import (
    STRATEGY_NAMES,
    ExpMax,
    MinExp,
    MinMax,
    TerminationSnapshot,
    strategy_by_name,
)


def _snapshot(
    weights: dict[str, float],
    remaining: int,
    mu: float = 0.7,
    domain: AnswerDomain | None = None,
) -> TerminationSnapshot:
    if domain is None:
        domain = AnswerDomain.closed(tuple(weights))
    return TerminationSnapshot(
        log_weights=weights, domain=domain, remaining_workers=remaining, mean_accuracy=mu
    )


class TestSnapshot:
    def test_leader_and_runner_up(self):
        snap = _snapshot({"a": 3.0, "b": 1.0, "c": 2.0}, remaining=2)
        assert snap.leader_and_runner_up() == ("a", "c")

    def test_runner_up_none_with_hidden_answers(self):
        domain = AnswerDomain(labels=("a",), m=4, closed_domain=False)
        snap = _snapshot({"a": 2.0}, remaining=3, domain=domain)
        leader, runner = snap.leader_and_runner_up()
        assert leader == "a"
        assert runner is None

    def test_single_label_no_hidden_rejected(self):
        domain = AnswerDomain(labels=("a", "b"), m=2, closed_domain=True)
        snap = TerminationSnapshot(
            log_weights={"a": 1.0, "b": 0.5},
            domain=domain,
            remaining_workers=0,
            mean_accuracy=0.7,
        )
        # Fine with two labels; the error case needs a 1-label closed
        # domain, which AnswerDomain itself forbids — so nothing to test
        # beyond construction here.
        assert snap.leader_and_runner_up()[0] == "a"

    def test_log_boost(self):
        snap = _snapshot({"a": 1.0, "b": 0.0}, remaining=4, mu=0.8)
        expected = 4 * worker_confidence(0.8, 2)
        assert snap.log_boost() == pytest.approx(expected)

    def test_zero_remaining_boost(self):
        snap = _snapshot({"a": 1.0, "b": 0.0}, remaining=0)
        assert snap.log_boost() == 0.0

    def test_adversarial_confidences_properties(self):
        snap = _snapshot({"a": 2.0, "b": 1.0, "c": 0.0}, remaining=3)
        min_p1, max_p2 = snap.adversarial_confidences()
        exp_p1, exp_p2 = snap.expected_confidences()
        # Equations 5/6: worst case can only hurt the leader and help the
        # runner-up.
        assert min_p1 <= exp_p1 + 1e-12
        assert max_p2 >= exp_p2 - 1e-12
        assert 0.0 < min_p1 < 1.0
        assert 0.0 < max_p2 < 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            _snapshot({"a": 1.0, "b": 0.0}, remaining=-1)
        with pytest.raises(ValueError, match="not in"):
            _snapshot({"a": 1.0, "b": 0.0}, remaining=1, mu=2.0)
        with pytest.raises(ValueError, match="missing"):
            TerminationSnapshot(
                log_weights={"a": 1.0},
                domain=AnswerDomain.closed(("a", "b")),
                remaining_workers=1,
                mean_accuracy=0.7,
            )


class TestStrategies:
    def test_all_stop_when_nothing_remains(self):
        snap = _snapshot({"a": 0.5, "b": 0.4}, remaining=0)
        for name in STRATEGY_NAMES:
            assert strategy_by_name(name).should_stop(snap)

    def test_none_stop_with_huge_outstanding_pool(self):
        snap = _snapshot({"a": 1.0, "b": 0.9}, remaining=50)
        for name in STRATEGY_NAMES:
            assert not strategy_by_name(name).should_stop(snap)

    def test_minmax_log_weight_equivalence(self):
        # MinMax ⟺ w1 > w2 + boost (shared denominator cancels).
        for lead, runner, remaining in ((5.0, 1.0, 1), (5.0, 1.0, 3), (2.0, 1.9, 1)):
            snap = _snapshot({"a": lead, "b": runner}, remaining=remaining)
            direct = lead > runner + snap.log_boost()
            assert MinMax().should_stop(snap) == direct

    def test_minexp_easier_than_minmax(self):
        # Any state where MinMax fires, MinExp fires too (exp2 ≤ max2).
        for weights in ({"a": 6.0, "b": 1.0}, {"a": 4.0, "b": 0.5}, {"a": 9.0, "b": 2.0}):
            for remaining in (1, 2, 4):
                snap = _snapshot(weights, remaining=remaining)
                if MinMax().should_stop(snap):
                    assert MinExp().should_stop(snap)

    def test_expmax_easier_than_minmax(self):
        for weights in ({"a": 6.0, "b": 1.0}, {"a": 4.0, "b": 0.5}, {"a": 9.0, "b": 2.0}):
            for remaining in (1, 2, 4):
                snap = _snapshot(weights, remaining=remaining)
                if MinMax().should_stop(snap):
                    assert ExpMax().should_stop(snap)

    def test_strategy_by_name(self):
        assert isinstance(strategy_by_name("minmax"), MinMax)
        assert isinstance(strategy_by_name("minexp"), MinExp)
        assert isinstance(strategy_by_name("expmax"), ExpMax)
        with pytest.raises(ValueError, match="unknown"):
            strategy_by_name("always")

    def test_clear_leader_one_remaining_stops(self):
        # One outstanding worker cannot overturn a 5-confidence lead.
        snap = _snapshot({"a": 6.0, "b": 0.5, "c": 0.0}, remaining=1)
        assert MinMax().should_stop(snap)
        assert MinExp().should_stop(snap)
        assert ExpMax().should_stop(snap)

    def test_hidden_answer_runner_up_path(self):
        # Open domain, single observed label: the adversary boosts a
        # hidden answer.  With enough outstanding votes no rule fires.
        domain = AnswerDomain(labels=("a",), m=5, closed_domain=False)
        snap = _snapshot({"a": 1.0}, remaining=10, domain=domain)
        assert not MinMax().should_stop(snap)
        # ...but with a commanding lead and one straggler they do.
        snap2 = _snapshot({"a": 9.0}, remaining=1, domain=domain)
        assert MinMax().should_stop(snap2)

    def test_denominators_finite(self):
        snap = _snapshot({"a": 300.0, "b": 200.0}, remaining=5)
        min_p1, max_p2 = snap.adversarial_confidences()
        assert math.isfinite(min_p1) and math.isfinite(max_p2)
