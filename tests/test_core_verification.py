"""Tests for the three verification models (paper §4.1, §5)."""

from __future__ import annotations

import pytest

from repro.core.types import WorkerAnswer, votes_by_answer
from repro.core.verification import (
    HalfVoting,
    MajorityVoting,
    ProbabilisticVerification,
    verify_with_all,
)


def _obs(*answers: tuple[str, str, float]) -> list[WorkerAnswer]:
    return [WorkerAnswer(w, a, acc) for w, a, acc in answers]


class TestVotesByAnswer:
    def test_counts(self):
        obs = _obs(("w1", "a", 0.5), ("w2", "a", 0.5), ("w3", "b", 0.5))
        assert votes_by_answer(obs) == {"a": 2, "b": 1}

    def test_order_preserved(self):
        obs = _obs(("w1", "z", 0.5), ("w2", "a", 0.5))
        assert list(votes_by_answer(obs)) == ["z", "a"]


class TestHalfVoting:
    def test_accepts_majority(self):
        obs = _obs(("w1", "a", 0.5), ("w2", "a", 0.5), ("w3", "b", 0.5))
        verdict = HalfVoting().verify(obs)
        assert verdict.answer == "a"
        assert verdict.confidence == pytest.approx(2 / 3)

    def test_abstains_without_majority(self):
        obs = _obs(("w1", "a", 0.5), ("w2", "b", 0.5), ("w3", "c", 0.5))
        verdict = HalfVoting().verify(obs)
        assert verdict.answer is None
        assert not verdict.decided

    def test_hired_workers_denominator(self):
        # 2 of 5 hired workers voting "a" is not a half majority even if
        # only 3 replied.
        obs = _obs(("w1", "a", 0.5), ("w2", "a", 0.5), ("w3", "b", 0.5))
        verdict = HalfVoting(hired_workers=5).verify(obs)
        assert verdict.answer is None

    def test_hired_fewer_than_answers_rejected(self):
        obs = _obs(("w1", "a", 0.5), ("w2", "a", 0.5))
        with pytest.raises(ValueError):
            HalfVoting(hired_workers=1).verify(obs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HalfVoting().verify([])


class TestMajorityVoting:
    def test_accepts_plurality(self):
        obs = _obs(
            ("w1", "a", 0.5), ("w2", "a", 0.5), ("w3", "b", 0.5), ("w4", "c", 0.5)
        )
        assert MajorityVoting().verify(obs).answer == "a"

    def test_abstains_on_tie(self):
        obs = _obs(("w1", "a", 0.5), ("w2", "b", 0.5))
        assert MajorityVoting().verify(obs).answer is None

    def test_plurality_below_half_still_accepted(self):
        # 2-1-1-1: plurality without majority — majority-voting accepts,
        # half-voting abstains (this is the gap Figure 9 measures).
        obs = _obs(
            ("w1", "a", 0.5),
            ("w2", "a", 0.5),
            ("w3", "b", 0.5),
            ("w4", "c", 0.5),
            ("w5", "d", 0.5),
        )
        assert MajorityVoting().verify(obs).answer == "a"
        assert HalfVoting().verify(obs).answer is None


class TestProbabilisticVerification:
    def test_paper_table4(self, pos_neu_neg):
        obs = _obs(
            ("w1", "pos", 0.54),
            ("w2", "pos", 0.31),
            ("w3", "neu", 0.49),
            ("w4", "neg", 0.73),
            ("w5", "pos", 0.46),
        )
        verdict = ProbabilisticVerification(domain=pos_neu_neg).verify(obs)
        assert verdict.answer == "neg"
        assert verdict.confidence == pytest.approx(0.495, abs=5e-4)

    def test_never_abstains(self, pos_neu_neg):
        obs = _obs(("w1", "pos", 0.5), ("w2", "neg", 0.5))
        verdict = ProbabilisticVerification(domain=pos_neu_neg).verify(obs)
        assert verdict.decided

    def test_equal_accuracy_reduces_to_majority(self, pos_neu_neg):
        obs = _obs(
            ("w1", "pos", 0.7), ("w2", "pos", 0.7), ("w3", "neg", 0.7)
        )
        verdict = ProbabilisticVerification(domain=pos_neu_neg).verify(obs)
        assert verdict.answer == "pos"

    def test_open_domain_inference(self):
        obs = _obs(("w1", "42", 0.9), ("w2", "41", 0.4))
        verdict = ProbabilisticVerification().verify(obs)
        assert verdict.answer == "42"

    def test_scores_are_probabilities(self, pos_neu_neg):
        obs = _obs(("w1", "pos", 0.8), ("w2", "neu", 0.6), ("w3", "neg", 0.55))
        verdict = ProbabilisticVerification(domain=pos_neu_neg).verify(obs)
        assert sum(verdict.scores.values()) == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 for v in verdict.scores.values())

    def test_empty_rejected(self, pos_neu_neg):
        with pytest.raises(ValueError):
            ProbabilisticVerification(domain=pos_neu_neg).verify([])


class TestVerifyWithAll:
    def test_returns_all_three(self, pos_neu_neg):
        obs = _obs(("w1", "pos", 0.7), ("w2", "pos", 0.6), ("w3", "neg", 0.8))
        verdicts = verify_with_all(obs, pos_neu_neg, hired_workers=3)
        assert set(verdicts) == {"half-voting", "majority-voting", "verification"}
        assert verdicts["half-voting"].method == "half-voting"

    def test_methods_can_disagree(self, pos_neu_neg):
        # The Table-4 situation: voting picks pos, verification picks neg.
        obs = _obs(
            ("w1", "pos", 0.54),
            ("w2", "pos", 0.31),
            ("w3", "neu", 0.49),
            ("w4", "neg", 0.73),
            ("w5", "pos", 0.46),
        )
        verdicts = verify_with_all(obs, pos_neu_neg, hired_workers=5)
        assert verdicts["half-voting"].answer == "pos"
        assert verdicts["majority-voting"].answer == "pos"
        assert verdicts["verification"].answer == "neg"
