"""Tests for the write-ahead journal layer (DESIGN.md §12).

Covers the record codec (type-tagged JSON for submission descriptors),
both journal stores (JSONL file + sqlite behind one protocol), the
fsync group-commit policy, torn-tail tolerance, and header versioning.
Recovery semantics live in ``test_durability_recovery.py``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.durability import codec
from repro.durability.journal import (
    ACTION_KINDS,
    DURABLE_KINDS,
    FileJournalStore,
    JournalError,
    SqliteJournalStore,
    check_header,
    iter_actions,
    make_header,
    open_store,
)
from repro.engine.query import Query
from repro.it.images import generate_images
from repro.tsa.stream import TweetStream
from repro.tsa.tweets import generate_tweets


class TestCodec:
    def test_scalars_and_containers_round_trip(self):
        value = {
            "a": [1, 2.5, "x", None, True],
            "b": ("t", ("nested", 3)),
            "c": {"d": [("p", 1)]},
        }
        assert codec.decode(codec.encode(value)) == value

    def test_tuples_come_back_as_tuples_lists_as_lists(self):
        out = codec.decode(codec.encode({"t": (1, 2), "l": [1, 2]}))
        assert out["t"] == (1, 2) and isinstance(out["t"], tuple)
        assert out["l"] == [1, 2] and isinstance(out["l"], list)

    def test_query_round_trips_exactly(self):
        query = Query(
            keywords=("rio", "movie"), required_accuracy=0.9,
            domain=("pos", "neg"), timestamp=12.5, window=2, subject="rio",
        )
        assert codec.decode(codec.encode(query)) == query

    def test_registered_dataclasses_round_trip(self):
        tweets = generate_tweets(["rio"], per_movie=4, seed=3)
        stream = TweetStream(tweets=tuple(tweets), unit_seconds=60.0)
        images = generate_images(per_subject=1, seed=4)[:2]
        value = {"stream": stream, "tweets": tweets, "images": images}
        out = codec.decode(codec.encode(value))
        assert out["stream"] == stream
        assert out["tweets"] == tweets
        assert out["images"] == images

    def test_encoded_form_is_json_serialisable(self):
        tweets = generate_tweets(["rio"], per_movie=2, seed=3)
        encoded = codec.encode({"gold_tweets": tweets, "batch_size": 4})
        assert codec.decode(json.loads(json.dumps(encoded))) == {
            "gold_tweets": tweets, "batch_size": 4,
        }

    def test_unregistered_dataclass_rejected(self):
        @dataclasses.dataclass
        class Local:
            x: int

        with pytest.raises(codec.CodecError, match="not journal-codec registered"):
            codec.encode(Local(x=1))

    def test_decode_never_imports_unknown_types(self):
        with pytest.raises(codec.CodecError, match="unregistered type"):
            codec.decode({"__dc__": "os.system", "f": {}})

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(codec.CodecError, match="str keys"):
            codec.encode({1: "x"})

    def test_tag_collision_rejected(self):
        with pytest.raises(codec.CodecError, match="collides"):
            codec.encode({"__tuple__": [1]})

    def test_register_requires_dataclass(self):
        with pytest.raises(codec.CodecError, match="not a dataclass"):
            codec.register(int)

    def test_columnar_sequences_round_trip(self):
        # Long homogeneous dataclass sequences go columnar (one type tag +
        # field list for the whole batch); list/tuple-ness is preserved.
        tweets = generate_tweets(["rio"], per_movie=8, seed=3)
        encoded = codec.encode({"as_list": tweets, "as_tuple": tuple(tweets)})
        assert encoded["as_list"]["__dcs__"] == "repro.tsa.tweets.Tweet"
        assert "rows" in encoded["as_list"]
        out = codec.decode(json.loads(json.dumps(encoded)))
        assert out["as_list"] == tweets and isinstance(out["as_list"], list)
        assert out["as_tuple"] == tuple(tweets)
        assert isinstance(out["as_tuple"], tuple)

    def test_mixed_sequences_stay_elementwise(self):
        tweets = generate_tweets(["rio"], per_movie=4, seed=3)
        mixed = list(tweets) + [42]
        encoded = codec.encode(mixed)
        assert isinstance(encoded, list)  # no columnar tag for mixed types
        assert codec.decode(encoded) == mixed

    def test_columnar_decode_rejects_unregistered(self):
        with pytest.raises(codec.CodecError, match="unregistered type"):
            codec.decode({"__dcs__": "os.system", "fields": [], "rows": []})

    def test_columnar_tag_collision_rejected(self):
        with pytest.raises(codec.CodecError, match="collides"):
            codec.encode({"__dcs__": [1]})


class TestHeader:
    def test_make_and_check(self):
        header = make_header(seed=7, service={"max_in_flight": 2}, meta={"x": 1})
        assert check_header(header) is header
        assert header["seed"] == 7
        assert header["service"] == {"max_in_flight": 2}
        assert header["meta"] == {"x": 1}

    def test_non_header_rejected(self):
        with pytest.raises(JournalError, match="does not open with a header"):
            check_header({"k": "ev", "t": 1})

    def test_wrong_format_rejected(self):
        header = make_header(seed=None, service={})
        header["format"] = "other-journal"
        with pytest.raises(JournalError, match="not a cdas-journal"):
            check_header(header)

    def test_future_version_rejected(self):
        header = make_header(seed=None, service={})
        header["version"] = 99
        with pytest.raises(JournalError, match="version 99"):
            check_header(header)


def _marks(n, kind="ev"):
    return [{"k": kind, "t": i, "n": i} for i in range(n)]


class TestFileStore:
    def test_append_read_round_trip(self, journal_path):
        with FileJournalStore(journal_path) as store:
            records = [make_header(seed=1, service={})] + _marks(5)
            for record in records:
                store.append(record)
        assert FileJournalStore(journal_path).read_records() == records

    def test_missing_file_reads_empty(self, journal_path):
        assert FileJournalStore(journal_path).read_records() == []

    def test_durable_kinds_commit_immediately(self, journal_path):
        store = FileJournalStore(journal_path, fsync_every=100)
        store.append({"k": "submit", "t": 0, "q": 0})
        assert store.syncs == 1  # no batching for actions
        store.append({"k": "ev", "t": 1})
        assert store.syncs == 1  # marks ride the batch
        store.close()

    def test_group_commit_batches_marks(self, journal_path):
        store = FileJournalStore(journal_path, fsync_every=4)
        for mark in _marks(8):
            store.append(mark)
        assert store.syncs == 2  # 8 marks / batch of 4
        store.append(_marks(1)[0])
        assert store.syncs == 2  # ninth mark still buffered
        store.commit()
        assert store.syncs == 3
        store.commit()
        assert store.syncs == 3  # barrier with nothing pending is free
        store.close()

    @pytest.mark.parametrize(
        "garbage",
        [b'{"k":"ev","t":', b"not json at all", b'{"k":"ev","t":9}'],
        ids=["torn-mid-record", "garbage", "unterminated-but-parsable"],
    )
    def test_torn_tail_dropped_on_read(self, journal_path, garbage):
        records = [make_header(seed=1, service={})] + _marks(3)
        with FileJournalStore(journal_path) as store:
            for record in records:
                store.append(record)
        with open(journal_path, "ab") as fh:
            fh.write(garbage)  # crash mid-write: no trailing newline
        assert FileJournalStore(journal_path).read_records() == records

    def test_append_after_torn_tail_continues_clean_prefix(self, journal_path):
        records = [make_header(seed=1, service={})] + _marks(3)
        with FileJournalStore(journal_path) as store:
            for record in records:
                store.append(record)
        with open(journal_path, "ab") as fh:
            fh.write(b'{"k":"ev","torn')
        store = FileJournalStore(journal_path)
        store.append({"k": "done", "t": 9, "q": 0})
        store.close()
        assert FileJournalStore(journal_path).read_records() == records + [
            {"k": "done", "t": 9, "q": 0}
        ]

    def test_fsync_every_must_be_positive(self, journal_path):
        with pytest.raises(ValueError, match="fsync_every"):
            FileJournalStore(journal_path, fsync_every=0)


class TestSqliteStore:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "svc.journal.sqlite"
        records = [make_header(seed=1, service={})] + _marks(5)
        with SqliteJournalStore(path) as store:
            for record in records:
                store.append(record)
        with SqliteJournalStore(path) as store:
            assert store.read_records() == records

    def test_uncommitted_batch_never_happened(self, tmp_path):
        path = tmp_path / "svc.journal.sqlite"
        store = SqliteJournalStore(path, fsync_every=100)
        store.append({"k": "submit", "t": 0, "q": 0})  # committed (durable kind)
        for mark in _marks(3):
            store.append(mark)  # buffered in the open transaction
        # A crash == the connection dying without commit.
        store._con.rollback()
        store._con.close()
        with SqliteJournalStore(path) as fresh:
            assert fresh.read_records() == [{"k": "submit", "t": 0, "q": 0}]

    def test_group_commit_counts(self, tmp_path):
        store = SqliteJournalStore(tmp_path / "j.sqlite", fsync_every=4)
        for mark in _marks(8):
            store.append(mark)
        assert store.syncs == 2
        store.close()


class TestOpenStore:
    def test_routes_by_suffix(self, tmp_path):
        assert isinstance(open_store(tmp_path / "a.jsonl"), FileJournalStore)
        assert isinstance(open_store(tmp_path / "a.journal"), FileJournalStore)
        for suffix in (".sqlite", ".sqlite3", ".db"):
            assert isinstance(
                open_store(tmp_path / f"a{suffix}"), SqliteJournalStore
            )

    def test_passes_stores_through(self, journal_path):
        store = FileJournalStore(journal_path)
        assert open_store(store) is store

    def test_fsync_every_propagates(self, journal_path):
        assert open_store(journal_path, fsync_every=3).fsync_every == 3


class TestTaxonomy:
    def test_actions_are_durable(self):
        assert ACTION_KINDS < DURABLE_KINDS

    def test_iter_actions_filters(self):
        records = [
            {"k": "header"}, {"k": "tenant"}, {"k": "ev"},
            {"k": "submit"}, {"k": "grant"}, {"k": "cancel"},
        ]
        assert [r["k"] for r in iter_actions(records)] == [
            "tenant", "submit", "cancel",
        ]
