"""Crash-recovery tests for the durable service (DESIGN.md §12).

The module baseline runs one journaled mixed workload — a terminal IT
query, a standing TSA query (whose window boundaries produce quiescent
auto-snapshot points), a reserved query cancelled mid-flight, and a final
IT query — then every test "crashes" it by truncating a copy of the
journal at some record boundary (plus torn garbage) and recovers.

The kill-and-recover property under test: every query whose submission
reached the journal finishes **bit-identically** to the uninterrupted
run, and once the truncation point is past the last journaled action the
whole outcome digest (results, ledger, reservations, grant log) matches.
Snapshot recovery must additionally be O(delta): the ``replayed_records``
/ ``replayed_events`` counters prove only the post-snapshot tail was
re-executed.
"""

from __future__ import annotations

import asyncio
import json
import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amt.market import SimulatedMarket
from repro.durability import (
    DurableSchedulerService,
    RecoveryDivergence,
    RecoveryError,
    open_store,
    outcome_digest,
    outcome_summary,
    recover,
)
from repro.durability.journal import ACTION_KINDS, FileJournalStore, JournalError
from repro.engine.query import Query
from repro.engine.service import QueryState
from repro.it.images import generate_images
from repro.system import CDAS
from repro.tsa.stream import TweetStream
from repro.tsa.tweets import generate_tweets, tweet_to_question

SEED = 41

#: Crash-file suffixes a torn final write could leave behind.
TORN_TAILS = (b"", b'{"k":"ev","t":', b"\x00\x00garbage")


def _build_system(pool) -> CDAS:
    cdas = CDAS.with_default_jobs(SimulatedMarket(pool, seed=SEED), seed=SEED)
    gold = generate_tweets(["gold-movie"], per_movie=12, seed=SEED + 1)
    cdas.calibrate(
        [tweet_to_question(t) for t in gold], workers_per_hit=10, hits=1
    )
    return cdas


def _image_query(subject: str) -> Query:
    return Query(
        keywords=("tags",), required_accuracy=0.85,
        domain="images", subject=subject,
    )


def _drive_workload(service) -> None:
    """The canonical journaled run: IT, standing TSA (auto-snapshots at
    its window boundaries), a reserved query cancelled mid-flight, IT."""
    gold = generate_tweets(["gold-movie"], per_movie=12, seed=SEED + 1)
    rio = generate_tweets(["rio"], per_movie=24, seed=SEED + 2)
    solaris = generate_tweets(["solaris"], per_movie=12, seed=SEED + 4)
    images = generate_images(per_subject=1, seed=SEED + 3)[:4]
    service.register_tenant("acme", budget_cap=60.0, priority=2.0)
    service.submit(
        "image-tagging", _image_query("tags-a"), tenant="acme",
        images=images[:2], gold_images=images[:1],
        images_per_hit=2, worker_count=5,
    )
    service.run_until_idle()
    service.submit(
        "twitter-sentiment",
        Query(keywords=("rio",), required_accuracy=0.9,
              domain="movies", subject="rio"),
        tenant="acme", gold_tweets=gold,
        stream=TweetStream(tweets=tuple(rio), unit_seconds=43200.0),
        batch_size=4, worker_count=5, windows=2,
    )
    service.run_until_idle()
    doomed = service.submit(
        "twitter-sentiment",
        Query(keywords=("solaris",), required_accuracy=0.9,
              domain="movies", subject="solaris"),
        tenant="acme", gold_tweets=gold, tweets=solaris,
        batch_size=4, worker_count=5, reserve=True,
    )
    while doomed.progress().hits_in_flight == 0:
        service.step()
    service.step()  # let the first HIT charge some assignments
    assert doomed.state is QueryState.RUNNING
    assert doomed.cancel()
    service.submit(
        "image-tagging", _image_query("tags-b"), tenant="beta",
        images=images[2:], gold_images=images[2:3],
        images_per_hit=2, worker_count=5,
    )
    service.run_until_idle()


@pytest.fixture(scope="module")
def baseline(tmp_path_factory, small_pool):
    """One journaled baseline run; tests truncate copies of its journal."""
    root = tmp_path_factory.mktemp("durable")
    path = root / "svc.journal.jsonl"
    service = _build_system(small_pool).service(
        max_in_flight=1, journal=path, snapshot_every=6
    )
    _drive_workload(service)
    service.close()
    records = [json.loads(line) for line in path.read_bytes().split(b"\n") if line]
    lines = path.read_bytes().split(b"\n")
    snaps = [i for i, r in enumerate(records) if r["k"] == "snapshot"]
    actions = [i for i, r in enumerate(records) if r["k"] in ACTION_KINDS]
    summary = outcome_summary(service)
    # The workload must produce what the tests rely on: snapshots (some
    # while the standing query is mid-flight), a journaled cancel, and a
    # submission after the cancel.
    cancel_at = next(i for i, r in enumerate(records) if r["k"] == "cancel")
    tsa_done_t = next(r["t"] for r in records if r["k"] == "done" and r["q"] == 1)
    tsa_submit_t = next(
        r["t"] for r in records if r["k"] == "submit" and r["q"] == 1
    )
    assert any(tsa_submit_t < records[i]["t"] < tsa_done_t for i in snaps)
    assert cancel_at < actions[-1]
    return {
        "root": root,
        "path": path,
        "lines": lines,
        "records": records,
        "snaps": snaps,
        "actions": actions,
        "cancel_at": cancel_at,
        "digest": outcome_digest(service),
        "queries": summary["queries"],
        "summary": summary,
        "pool": small_pool,
    }


def _crash_copy(baseline, cut: int, torn: bytes = b"", tag: str = "t") -> object:
    """A copy of the journal truncated to its first ``cut`` records, with
    ``torn`` appended the way a crash mid-write would leave it.  Lives in
    the baseline dir so snapshot files resolve."""
    path = baseline["root"] / f"crash-{tag}-{cut}-{len(torn)}.journal.jsonl"
    path.write_bytes(b"\n".join(baseline["lines"][:cut]) + b"\n" + torn)
    return path


def _expected_tail(baseline, cut: int) -> int:
    """How many records recovery must re-execute for a cut: everything
    after the newest snapshot before the cut (snapshot pointers aside)."""
    used = max((s for s in baseline["snaps"] if s < cut), default=0)
    return sum(
        1 for r in baseline["records"][used + 1 : cut] if r["k"] != "snapshot"
    )


def _recover_and_finish(baseline, path, **kwargs):
    service = recover(path, _build_system(baseline["pool"]), **kwargs)
    service.run_until_idle()
    service.close()
    return service


class TestKillAndRecover:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_any_crash_point_recovers_bit_identically(self, baseline, data):
        cut = data.draw(
            st.integers(min_value=1, max_value=len(baseline["records"]))
        )
        torn = data.draw(st.sampled_from(TORN_TAILS))
        service = _recover_and_finish(
            baseline, _crash_copy(baseline, cut, torn, tag="hyp")
        )
        # Every journaled submission finishes exactly as the uninterrupted
        # run finished it.  One legitimate exception: a query whose CANCEL
        # fell past the cut was never durably cancelled, so the recovered
        # run (correctly) lets it finish instead.
        lost_cancels = {
            r["q"]
            for i, r in enumerate(baseline["records"])
            if r["k"] == "cancel" and i >= cut
        }
        queries = outcome_summary(service)["queries"]
        for seq, got in enumerate(queries):
            if seq in lost_cancels:
                assert got["state"] == "done"
                continue
            assert got == baseline["queries"][seq]
        # ...the re-executed tail is exactly the post-snapshot delta...
        assert service.replayed_records == _expected_tail(baseline, cut)
        # ...and once every action is in the prefix the whole world —
        # ledger, reservations, grant log — is bit-identical.
        if cut > baseline["actions"][-1]:
            assert outcome_digest(service) == baseline["digest"]

    def test_clean_shutdown_recovers_identically(self, baseline):
        service = _recover_and_finish(baseline, _crash_copy(
            baseline, len(baseline["records"]), tag="clean"
        ))
        assert outcome_digest(service) == baseline["digest"]
        assert outcome_summary(service) == baseline["summary"]

    def test_recovered_service_keeps_journaling_and_recovers_again(
        self, baseline
    ):
        # Crash once mid-run, recover, run to idle (which appends the
        # re-executed suffix to the same journal)...
        cut = baseline["actions"][-1] + 1
        path = _crash_copy(baseline, cut, tag="twice")
        first = _recover_and_finish(baseline, path)
        digest = outcome_digest(first)
        assert digest == baseline["digest"]
        # ...then crash the *recovered* run and recover that: the journal
        # a recovery writes must itself be recoverable.
        data = path.read_bytes().split(b"\n")
        data = data[: len(data) - 4]
        path.write_bytes(b"\n".join(data) + b"\n" + b'{"k":"grant","to')
        second = _recover_and_finish(baseline, path)
        assert outcome_digest(second) == digest


class TestCancelAcrossRestart:
    def test_journaled_cancel_survives_crash(self, baseline):
        # Crash immediately after the cancel hit the journal — before any
        # of the cancellation's market effects were re-journaled.  The
        # write-ahead ordering makes this the worst case: recovery must
        # re-apply the cancel, never re-admit or re-charge the query.
        service = _recover_and_finish(baseline, _crash_copy(
            baseline, baseline["cancel_at"] + 1, tag="cancel"
        ))
        doomed = service.handles[2]
        assert doomed.state is QueryState.CANCELLED
        base_doomed = baseline["queries"][2]
        assert outcome_summary(service)["queries"][2] == base_doomed
        # Charge-final: the spend is exactly the pre-cancel charges.
        assert doomed.spend == base_doomed["spend"]
        # Nothing was re-granted to the dead query during recovery's
        # continuation, and its reservation settled back to zero.
        baseline_grants = [
            seq for _, seq in baseline["summary"]["grant_log"]
        ].count(2)
        assert [
            seq for _, seq in service.admission.grant_log
        ].count(2) == baseline_grants
        assert doomed.reserved == 0.0
        assert service.tenant_reserved("acme") == 0.0


class TestSnapshotCompaction:
    def test_recovery_from_snapshot_is_o_delta(self, baseline):
        last_snap = baseline["snaps"][-1]
        cut = last_snap + 1
        service = _recover_and_finish(
            baseline, _crash_copy(baseline, cut, tag="odelta")
        )
        # The snapshot absorbed the whole prefix: nothing to re-execute.
        assert service.replayed_records == 0
        assert service.replayed_events == 0
        queries = outcome_summary(service)["queries"]
        assert queries == baseline["queries"][: len(queries)]

    def test_full_replay_matches_and_replays_strictly_more(self, baseline):
        cut = len(baseline["records"])
        path = _crash_copy(baseline, cut, tag="full")
        with_snap = _recover_and_finish(baseline, path)
        without = _recover_and_finish(baseline, path, use_snapshot=False)
        assert outcome_digest(with_snap) == baseline["digest"]
        assert outcome_digest(without) == baseline["digest"]
        assert without.replayed_records > with_snap.replayed_records
        assert without.replayed_events >= with_snap.replayed_events
        assert without.replayed_records == sum(
            1 for r in baseline["records"][1:] if r["k"] != "snapshot"
        )

    def test_mid_standing_snapshot_resumes_the_standing_query(self, baseline):
        # A snapshot taken while the standing TSA query was between
        # windows: recovery must regenerate its batch sources, fast-forward
        # them past the granted specs, and pull the remaining windows.
        records, snaps = baseline["records"], baseline["snaps"]
        tsa_done_t = next(
            r["t"] for r in records if r["k"] == "done" and r["q"] == 1
        )
        mid = [s for s in snaps if records[s]["t"] < tsa_done_t and records[s]["t"] > 0]
        mid_snap = next(
            s for s in mid
            if any(r["k"] == "submit" and r["q"] == 1 for r in records[:s])
        )
        service = _recover_and_finish(baseline, _crash_copy(
            baseline, mid_snap + 1, tag="midsnap"
        ))
        standing = service.handles[1]
        assert standing.state is QueryState.DONE
        assert outcome_summary(service)["queries"][1] == baseline["queries"][1]

    def test_missing_snapshot_file_falls_back(self, baseline):
        # Corrupt the newest snapshot's file: recovery must fall back to
        # an older snapshot (or a full replay) rather than fail or trust
        # a file whose digest does not match the journal pointer.
        cut = len(baseline["records"])
        path = _crash_copy(baseline, cut, tag="nosnap")
        last_snap_rec = baseline["records"][baseline["snaps"][-1]]
        snap_file = baseline["root"] / last_snap_rec["path"]
        original = snap_file.read_bytes()
        try:
            snap_file.write_bytes(original[:-7] + b"\x00torn\x00")
            service = _recover_and_finish(baseline, path)
            assert outcome_digest(service) == baseline["digest"]
            assert service.replayed_records > 0  # older snapshot + longer tail
        finally:
            snap_file.write_bytes(original)

    def test_snapshot_requires_quiescence(self, baseline, small_pool, tmp_path):
        from repro.durability.snapshot import SnapshotError

        gold = generate_tweets(["gold-movie"], per_movie=12, seed=SEED + 1)
        solaris = generate_tweets(["solaris"], per_movie=12, seed=SEED + 4)
        service = _build_system(small_pool).service(
            max_in_flight=1, journal=tmp_path / "q.journal.jsonl"
        )
        handle = service.submit(
            "twitter-sentiment",
            Query(keywords=("solaris",), required_accuracy=0.9,
                  domain="movies", subject="solaris"),
            gold_tweets=gold, tweets=solaris, batch_size=4, worker_count=5,
        )
        while handle.progress().hits_in_flight == 0:
            service.step()
        with pytest.raises(SnapshotError, match="quiescence"):
            service.snapshot()
        service.run_until_idle()
        service.snapshot()  # idle service: always quiescent
        service.close()


class TestSqliteStore:
    def test_sqlite_journal_recovers_after_row_loss(self, small_pool, tmp_path):
        path = tmp_path / "svc.journal.sqlite"
        service = _build_system(small_pool).service(
            max_in_flight=1, journal=path, snapshot_every=6
        )
        _drive_workload(service)
        service.close()
        digest = outcome_digest(service)
        count = len(open_store(path).read_records())
        # Same workload, same seed: the backing store must not leak into
        # the outcomes.
        # Crash simulation: drop the uncommitted tail (sqlite's analogue
        # of a torn JSONL tail is rows that never committed).
        con = sqlite3.connect(path)
        keep = con.execute(
            "SELECT id FROM journal ORDER BY id"
        ).fetchall()[count - 5][0]
        con.execute("DELETE FROM journal WHERE id > ?", (keep,))
        con.commit()
        con.close()
        service = recover(path, _build_system(small_pool))
        service.run_until_idle()
        service.close()
        assert outcome_digest(service) == digest

    def test_sqlite_and_file_journals_agree(self, baseline, small_pool, tmp_path):
        service = _build_system(small_pool).service(
            max_in_flight=1,
            journal=tmp_path / "svc.journal.sqlite",
            snapshot_every=6,
        )
        _drive_workload(service)
        service.close()
        assert outcome_digest(service) == baseline["digest"]


class TestReplayBackendSeam:
    def test_recover_against_a_recorded_market_trace(self, small_pool, tmp_path):
        from repro.amt.pool import PoolConfig, WorkerPool
        from repro.amt.trace import TraceRecorder, TraceReplayBackend

        trace_path = tmp_path / "market.trace.jsonl"
        journal = tmp_path / "svc.journal.jsonl"
        pool = WorkerPool.from_config(PoolConfig(size=120), seed=7)
        system = _build_system(small_pool)
        with TraceRecorder(
            SimulatedMarket(pool, seed=SEED), trace_path
        ) as recorder:
            service = system.service(
                max_in_flight=1, backend=recorder, journal=journal
            )
            _drive_workload(service)
            service.close()
        digest = outcome_digest(service)
        # Crash the journal, then re-arm the in-flight work from the
        # recorded trace instead of the simulated market.
        data = journal.read_bytes().split(b"\n")
        journal.write_bytes(b"\n".join(data[: len(data) - 4]) + b"\n")
        recovered = recover(
            journal,
            _build_system(small_pool),
            backend=TraceReplayBackend.load(trace_path),
        )
        recovered.run_until_idle()
        recovered.close()
        assert outcome_digest(recovered) == digest


class TestAsyncDriver:
    def test_async_durable_run_recovers_identically(self, small_pool, tmp_path):
        path = tmp_path / "aio.journal.jsonl"
        gold = generate_tweets(["gold-movie"], per_movie=12, seed=SEED + 1)
        rio = generate_tweets(["rio"], per_movie=24, seed=SEED + 2)
        images = generate_images(per_subject=1, seed=SEED + 3)[:2]

        async def run() -> str:
            aservice = _build_system(small_pool).async_service(
                max_in_flight=1, journal=path
            )
            async with aservice:
                aservice.register_tenant("acme", budget_cap=60.0, priority=2.0)
                h1 = aservice.submit(
                    "twitter-sentiment",
                    Query(keywords=("rio",), required_accuracy=0.9,
                          domain="movies", subject="rio"),
                    tenant="acme", gold_tweets=gold,
                    stream=TweetStream(tweets=tuple(rio), unit_seconds=43200.0),
                    batch_size=4, worker_count=5, windows=2,
                )
                h2 = aservice.submit(
                    "image-tagging", _image_query("tags-a"),
                    images=images, gold_images=images[:1],
                    images_per_hit=2, worker_count=5,
                )
                await h1.result()
                await h2.result()
            aservice.service.close()
            return outcome_digest(aservice.service)

        digest = asyncio.run(run())
        # The driver flushed at dormancy/drain; the journal on disk must
        # replay to the exact same world, torn tail and all.
        with open(path, "ab") as fh:
            fh.write(b'{"k":"ev","t"')
        recovered = recover(path, _build_system(small_pool))
        recovered.run_until_idle()
        recovered.close()
        assert outcome_digest(recovered) == digest


class TestFailureModes:
    def test_empty_journal_refused(self, small_pool, journal_path):
        journal_path.write_bytes(b"")
        with pytest.raises(RecoveryError, match="empty"):
            recover(journal_path, _build_system(small_pool))

    def test_seed_mismatch_refused(self, baseline, small_pool):
        path = _crash_copy(baseline, len(baseline["records"]), tag="seed")
        other = CDAS.with_default_jobs(
            SimulatedMarket(small_pool, seed=SEED + 1), seed=SEED + 1
        )
        with pytest.raises(RecoveryError, match="seed"):
            recover(path, other)

    def test_tampered_journal_raises_divergence(self, baseline):
        records = [json.loads(line) for line in baseline["lines"] if line]
        tampered = next(
            i for i, r in enumerate(records)
            if r["k"] == "ev" and i > baseline["actions"][1]
        )
        records[tampered]["w"] = str(records[tampered]["w"]) + "x"
        path = baseline["root"] / "tampered.journal.jsonl"
        path.write_bytes(
            b"\n".join(
                json.dumps(r, separators=(",", ":")).encode() for r in records
            )
            + b"\n"
        )
        with pytest.raises(RecoveryDivergence, match="diverged"):
            recover(path, _build_system(baseline["pool"]), use_snapshot=False)

    def test_fresh_service_refuses_existing_journal(self, baseline, small_pool):
        path = _crash_copy(baseline, 5, tag="fresh")
        with pytest.raises(JournalError, match="recover"):
            _build_system(small_pool).service(journal=path)

    def test_refused_submission_journals_nothing(self, small_pool, journal_path):
        service = _build_system(small_pool).service(journal=journal_path)
        before = service.journal_offset
        with pytest.raises(KeyError):
            service.submit("no-such-job", _image_query("x"))
        assert service.journal_offset == before
        service.close()

    def test_durable_wrapper_exposes_the_service_surface(
        self, small_pool, journal_path
    ):
        service = _build_system(small_pool).service(journal=journal_path)
        assert isinstance(service, DurableSchedulerService)
        assert service.max_in_flight == 4
        assert service.idle
        assert service.handles == ()
        assert service.next_arrival_eta() is None
        plan = service.plan(
            "image-tagging", _image_query("tags-a"),
            images=generate_images(per_subject=1, seed=SEED + 3)[:2],
            gold_images=generate_images(per_subject=1, seed=SEED + 3)[:1],
            images_per_hit=2, worker_count=5,
        )
        assert service.preadmit(plan).admitted
        assert service.journal_offset == 1  # planning journals nothing
        service.close()
