"""Failure-injection and edge-case coverage across the stack."""

from __future__ import annotations

import pytest

from repro.amt.hit import HIT, Question
from repro.amt.market import SimulatedMarket
from repro.amt.pool import PoolConfig, WorkerPool
from repro.core.domain import AnswerDomain
from repro.core.online import run_online
from repro.core.prediction import PredictionInfeasibleError
from repro.core.termination import ExpMax, MinMax
from repro.core.types import WorkerAnswer
from repro.core.verification import ProbabilisticVerification
from repro.engine.engine import CrowdsourcingEngine, EngineConfig


def _q(qid: str = "q") -> Question:
    return Question(question_id=qid, options=("a", "b", "c"), truth="a")


class TestMarketExhaustion:
    def test_hit_larger_than_pool_rejected(self):
        pool = WorkerPool.from_config(PoolConfig(size=10), seed=1)
        market = SimulatedMarket(pool, seed=1)
        with pytest.raises(ValueError, match="eligible"):
            market.publish(HIT(hit_id="big", questions=(_q(),), assignments=11))

    def test_hit_exactly_pool_size_allowed(self):
        pool = WorkerPool.from_config(PoolConfig(size=10), seed=1)
        market = SimulatedMarket(pool, seed=1)
        handle = market.publish(HIT(hit_id="all", questions=(_q(),), assignments=10))
        assert len(handle.collect_all()) == 10


class TestEngineInfeasibility:
    def test_uncalibrated_engine_cannot_predict(self, small_pool):
        market = SimulatedMarket(small_pool, seed=2)
        engine = CrowdsourcingEngine(market, seed=2)
        # Prior mu = 0.5 → prediction infeasible, loud error.
        with pytest.raises(PredictionInfeasibleError):
            engine.predict_workers(0.9)

    def test_forced_worker_count_bypasses_prediction(self, small_pool):
        market = SimulatedMarket(small_pool, seed=3)
        engine = CrowdsourcingEngine(market, seed=3)
        result = engine.run_batch([_q()], 0.9, gold_pool=[_q("g")], worker_count=3)
        assert result.workers_hired == 3


class TestDegenerateObservations:
    def test_all_workers_agree_max_confidence(self, pos_neu_neg):
        obs = [WorkerAnswer(f"w{i}", "pos", 0.9) for i in range(9)]
        verdict = ProbabilisticVerification(domain=pos_neu_neg).verify(obs)
        assert verdict.answer == "pos"
        assert verdict.confidence > 0.999

    def test_all_workers_at_exact_uniform_accuracy(self, pos_neu_neg):
        # Accuracy 1/m ⇒ zero confidence ⇒ all answers equally likely.
        obs = [
            WorkerAnswer("w1", "pos", 1 / 3),
            WorkerAnswer("w2", "neg", 1 / 3),
        ]
        verifier = ProbabilisticVerification(domain=pos_neu_neg)
        scores = verifier.verify(obs).scores
        assert scores["pos"] == pytest.approx(scores["neg"])
        assert scores["pos"] == pytest.approx(scores["neu"])

    def test_single_answer_runs_online(self, pos_neu_neg):
        result = run_online(
            [WorkerAnswer("w", "neu", 0.8)], pos_neu_neg, mean_accuracy=0.7
        )
        assert result.verdict.answer == "neu"
        assert result.answers_used == 1

    def test_online_with_strategy_and_two_labels(self):
        domain = AnswerDomain.closed(("yes", "no"))
        answers = [WorkerAnswer(f"w{i}", "yes", 0.9) for i in range(9)]
        result = run_online(answers, domain, mean_accuracy=0.7, strategy=ExpMax())
        assert result.verdict.answer == "yes"
        assert result.answers_used <= 9

    def test_minmax_never_fires_on_alternating_votes(self, pos_neu_neg):
        # Perfectly split evidence keeps min1 ≤ max2 throughout.
        answers = []
        for i in range(10):
            answers.append(
                WorkerAnswer(f"w{i}", "pos" if i % 2 == 0 else "neg", 0.7)
            )
        result = run_online(answers, pos_neu_neg, mean_accuracy=0.7, strategy=MinMax())
        assert not result.terminated_early


class TestEngineGoldExhaustion:
    def test_gold_pool_smaller_than_needed_rejected(self, small_pool):
        market = SimulatedMarket(small_pool, seed=4)
        engine = CrowdsourcingEngine(
            market, seed=4, config=EngineConfig(sampling_rate=0.5)
        )
        questions = [_q(f"q{i}") for i in range(10)]
        with pytest.raises(ValueError, match="gold"):
            engine.run_batch(questions, 0.9, gold_pool=[_q("g")], worker_count=3)

    def test_zero_sampling_rate_needs_no_gold(self, small_pool):
        market = SimulatedMarket(small_pool, seed=5)
        engine = CrowdsourcingEngine(
            market, seed=5, config=EngineConfig(sampling_rate=0.0)
        )
        result = engine.run_batch([_q()], 0.9, gold_pool=[], worker_count=3)
        assert len(result.records) == 1
        # Without gold the estimator never learns: every worker sits at
        # the prior.
        assert engine.estimator.known_workers() == []


class TestQuestionTopicDefault:
    def test_default_topic_is_general(self):
        assert _q().topic == "general"
