"""Tests for the async-native service front door (DESIGN.md §8).

Covers awaitable result/timeout/cancel semantics, progress streaming,
bit-identical equivalence of concurrent gathers to sequential blocking
runs, ServiceMux fairness, and the sleep-not-spin guarantee on a
wall-clock-delaying backend.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.amt.market import SimulatedMarket
from repro.amt.pool import PoolConfig, WorkerPool
from repro.amt.slow import SlowBackend
from repro.engine.aio import AsyncSchedulerService, ServiceMux
from repro.engine.service import QueryCancelled, QueryState
from repro.it.images import generate_images
from repro.system import CDAS
from repro.tsa.app import movie_query
from repro.tsa.tweets import generate_tweets

#: Wall-clock delay of the SlowBackend tests (long enough to observe
#: waiting, short enough to keep the suite fast).
DELAY = 0.02


def _cdas(seed: int, slow: float | None = None) -> CDAS:
    pool = WorkerPool.from_config(PoolConfig(size=120), seed=7)
    market = SimulatedMarket(pool, seed=seed)
    if slow is not None:
        market = SlowBackend(market, delay=slow)
    return CDAS.with_default_jobs(market, seed=seed)


def _tsa_inputs(movies=("alpha", "beta"), per_movie=12, seed=5, workers=5):
    tweets = generate_tweets(list(movies), per_movie=per_movie, seed=seed)
    gold = generate_tweets(["gold-movie"], per_movie=10, seed=seed + 1)
    return {
        "tweets": tweets,
        "gold_tweets": gold,
        "worker_count": workers,
        "batch_size": 6,
    }


class TestAwaitResult:
    def test_await_result_matches_blocking_run(self):
        """One query awaited on the loop == the same query run blocking."""
        sync_service = _cdas(41).service(max_in_flight=2)
        sync_handle = sync_service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9), **_tsa_inputs()
        )
        reference = sync_handle.result()

        async def run():
            async with _cdas(41).async_service(max_in_flight=2) as service:
                handle = service.submit(
                    "twitter-sentiment", movie_query("alpha", 0.9),
                    **_tsa_inputs(),
                )
                assert not handle.done  # awaitable, not already run
                return await handle.result()

        assert asyncio.run(run()) == reference

    def test_submit_outside_loop_awaited_inside(self):
        """submit() needs no running loop; the driver starts on first await."""
        service = _cdas(41).async_service(max_in_flight=2)
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9), **_tsa_inputs()
        )
        assert handle.state is QueryState.QUEUED

        async def run():
            async with service:
                return await handle.result()

        result = asyncio.run(run())
        assert handle.state is QueryState.DONE
        assert len(result.records) == 12

    def test_invalid_submission_raises_synchronously(self):
        service = _cdas(41).async_service()
        with pytest.raises(KeyError):
            service.submit("no-such-job", movie_query("alpha", 0.9))
        with pytest.raises(ValueError):
            service.submit(
                "twitter-sentiment", movie_query("alpha", 0.9)
            )  # missing gold_tweets

    def test_timeout_raises_without_losing_the_query(self):
        async def run():
            cdas = _cdas(42, slow=DELAY)
            async with cdas.async_service(max_in_flight=2) as service:
                handle = service.submit(
                    "twitter-sentiment", movie_query("alpha", 0.9),
                    **_tsa_inputs(),
                )
                with pytest.raises(TimeoutError):
                    await handle.result(timeout=DELAY / 2)
                # Not terminal, not cancelled — the query kept running...
                assert not handle.done
                # ...and a later await completes it normally.
                result = await handle.result()
                assert handle.state is QueryState.DONE
                return result

        assert len(asyncio.run(run()).records) == 12

    def test_cancel_while_awaited(self):
        async def run():
            cdas = _cdas(43, slow=DELAY)
            async with cdas.async_service(max_in_flight=2) as service:
                handle = service.submit(
                    "twitter-sentiment", movie_query("alpha", 0.9),
                    **_tsa_inputs(),
                )
                waiter = asyncio.create_task(handle.result())
                await asyncio.sleep(DELAY)  # let some HITs publish
                assert await handle.cancel()
                with pytest.raises(QueryCancelled):
                    await waiter
                assert handle.state is QueryState.CANCELLED
                spend_at_cancel = handle.spend
                # Cancelling again is a no-op; spend stays frozen.
                assert not await handle.cancel()
                return spend_at_cancel, handle.spend

        frozen, after = asyncio.run(run())
        assert frozen == after


class TestGatherEquivalence:
    """Two services × three tenants on one loop == sequential blocking."""

    def _submissions(self):
        it_inputs = {
            "images": generate_images(per_subject=1, seed=9)[:3],
            "gold_images": generate_images(per_subject=1, seed=10),
            "worker_count": 5,
        }
        return [
            # (service key, job, query, tenant, inputs)
            ("svc-a", "twitter-sentiment", movie_query("alpha", 0.9),
             "tenant1", _tsa_inputs()),
            ("svc-a", "twitter-sentiment", movie_query("beta", 0.9),
             "tenant2", _tsa_inputs()),
            ("svc-b", "image-tagging", movie_query("images", 0.9),
             "tenant3", it_inputs),
        ]

    def _sequential_blocking(self):
        """The PR-2 API: per-service blocking services, pumped to idle."""
        results = {}
        for key, seed in (("svc-a", 50), ("svc-b", 51)):
            service = _cdas(seed).service(max_in_flight=2)
            handles = [
                (i, service.submit(job, query, tenant=tenant, **inputs))
                for i, (k, job, query, tenant, inputs) in enumerate(
                    self._submissions()
                )
                if k == key
            ]
            service.run_until_idle()
            for i, handle in handles:
                results[i] = handle.result()
        return [results[i] for i in sorted(results)]

    def test_gather_bit_identical_to_sequential(self):
        reference = self._sequential_blocking()

        async def run():
            mux = ServiceMux()
            mux.add("svc-a", _cdas(50).async_service(max_in_flight=2))
            mux.add("svc-b", _cdas(51).async_service(max_in_flight=2))
            handles = [
                mux.submit(key, job, query, tenant=tenant, **inputs)
                for key, job, query, tenant, inputs in self._submissions()
            ]
            async with mux:
                return await mux.gather(*handles)

        concurrent = asyncio.run(run())
        assert concurrent == reference

    def test_gather_is_repeatable(self):
        async def run():
            mux = ServiceMux()
            mux.add("svc-a", _cdas(50).async_service(max_in_flight=2))
            mux.add("svc-b", _cdas(51).async_service(max_in_flight=2))
            handles = [
                mux.submit(key, job, query, tenant=tenant, **inputs)
                for key, job, query, tenant, inputs in self._submissions()
            ]
            async with mux:
                return await mux.gather(*handles)

        assert asyncio.run(run()) == asyncio.run(run())


class TestSleepNotSpin:
    def test_driver_sleeps_through_dormant_spells(self):
        """Bounded step() count on a slow backend: waits are awaited."""

        async def run():
            cdas = _cdas(44, slow=DELAY)
            async with cdas.async_service(max_in_flight=2) as service:
                handle = service.submit(
                    "twitter-sentiment", movie_query("alpha", 0.9),
                    **_tsa_inputs(workers=3),
                )
                result = await handle.result()
                return result, service.steps_taken

        result, steps = asyncio.run(run())
        assert len(result.records) == 12
        # 2 batches × 3 workers = 6 submission events.  A driver that
        # spun during the ~6 × DELAY of dormancy would take thousands of
        # steps; a sleeping one takes a few per event (grants, seals).
        assert steps <= 8 * 6

    def test_updates_stream_monotone_to_terminal(self):
        async def run():
            async with _cdas(45).async_service(max_in_flight=2) as service:
                handle = service.submit(
                    "twitter-sentiment", movie_query("alpha", 0.9),
                    **_tsa_inputs(),
                )
                return [s async for s in handle.updates()]

        snapshots = asyncio.run(run())
        assert len(snapshots) > 1
        assert snapshots[-1].state is QueryState.DONE
        # Changed snapshots only, counters monotone.
        for earlier, later in zip(snapshots, snapshots[1:]):
            assert earlier != later
            assert earlier.items_answered <= later.items_answered
            assert earlier.items_finalized <= later.items_finalized
            assert earlier.spend <= later.spend

    def test_updates_on_terminal_handle_yields_final_snapshot(self):
        async def run():
            async with _cdas(45).async_service(max_in_flight=2) as service:
                handle = service.submit(
                    "twitter-sentiment", movie_query("alpha", 0.9),
                    **_tsa_inputs(),
                )
                await handle.result()
                return [s async for s in handle.updates()]

        snapshots = asyncio.run(run())
        assert len(snapshots) == 1
        assert snapshots[0].state is QueryState.DONE


class TestServiceMux:
    def test_duplicate_name_rejected(self):
        mux = ServiceMux()
        mux.add("svc", _cdas(46).async_service())
        with pytest.raises(ValueError):
            mux.add("svc", _cdas(47).async_service())

    def test_wraps_plain_scheduler_service(self):
        mux = ServiceMux()
        wrapped = mux.add("svc", _cdas(46).service())
        assert isinstance(wrapped, AsyncSchedulerService)
        assert wrapped.name == "svc"
        assert mux["svc"] is wrapped and len(mux) == 1

    def test_fair_interleaving_on_one_loop(self):
        """Neither service monopolises the loop: productive steps from
        both appear throughout the shared prefix of the step log."""

        async def run():
            mux = ServiceMux()
            a = mux.add("a", _cdas(50).async_service(max_in_flight=2))
            b = mux.add("b", _cdas(51).async_service(max_in_flight=2))
            h1 = a.submit(
                "twitter-sentiment", movie_query("alpha", 0.9), **_tsa_inputs()
            )
            h2 = b.submit(
                "twitter-sentiment", movie_query("beta", 0.9), **_tsa_inputs()
            )
            async with mux:
                await mux.gather(h1, h2)
            return mux.step_log

        log = asyncio.run(run())
        prefix = log[:20]
        assert prefix.count("a") >= 8 and prefix.count("b") >= 8

    def test_run_until_idle_and_driver_restart(self):
        async def run():
            service = _cdas(48).async_service(max_in_flight=2)
            first = service.submit(
                "twitter-sentiment", movie_query("alpha", 0.9), **_tsa_inputs()
            )
            await service.wait_idle()
            assert first.done
            # The driver exited on drain; a new submission restarts it.
            second = service.submit(
                "twitter-sentiment", movie_query("beta", 0.9), **_tsa_inputs()
            )
            result = await second.result()
            await service.aclose()
            return first.state, second.state, len(result.records)

        first_state, second_state, records = asyncio.run(run())
        assert first_state is QueryState.DONE
        assert second_state is QueryState.DONE
        assert records == 12

    def test_mux_run_until_idle(self):
        async def run():
            mux = ServiceMux()
            a = mux.add("a", _cdas(50).async_service(max_in_flight=2))
            handle = a.submit(
                "twitter-sentiment", movie_query("alpha", 0.9), **_tsa_inputs()
            )
            async with mux:
                await mux.run_until_idle()
                assert handle.done
                return await handle.result()

        assert len(asyncio.run(run()).records) == 12


class TestUpdateFanout:
    """Bounded-queue fan-out: slow, abandoned and tiny-buffer consumers
    never grow memory without bound and never stall the driver — the
    contract the gateway's SSE endpoint leans on (DESIGN.md §13)."""

    def test_abandoned_subscriber_queue_stays_bounded(self):
        """Subscribe, never consume: the driver finishes anyway and the
        unread queue holds at most ``max_pending`` snapshots, the last
        of them terminal."""

        async def run():
            async with _cdas(60).async_service(max_in_flight=2) as service:
                handle = service.submit(
                    "twitter-sentiment", movie_query("alpha", 0.9),
                    **_tsa_inputs(),
                )
                queue = handle.subscribe(max_pending=2)
                result = await handle.result()
                pending = []
                while not queue.empty():
                    pending.append(queue.get_nowait())
                handle.unsubscribe(queue)
                return result, pending

        result, pending = asyncio.run(run())
        assert len(result.records) == 12
        assert 1 <= len(pending) <= 2
        # Eviction drops the *oldest*: the terminal snapshot survives.
        assert pending[-1].state is QueryState.DONE

    def test_slow_consumer_stream_coalesces_but_reaches_terminal(self):
        """A consumer that yields to the driver between reads with a
        one-slot buffer observes a coalesced but monotone stream whose
        final snapshot is terminal."""

        async def run():
            async with _cdas(60).async_service(max_in_flight=2) as service:
                handle = service.submit(
                    "twitter-sentiment", movie_query("alpha", 0.9),
                    **_tsa_inputs(),
                )
                snapshots = []
                async for snapshot in handle.updates(max_pending=1):
                    snapshots.append(snapshot)
                    # Let the driver publish several times per read.
                    for _ in range(20):
                        await asyncio.sleep(0)
                return snapshots

        snapshots = asyncio.run(run())
        assert snapshots[-1].state is QueryState.DONE
        for earlier, later in zip(snapshots, snapshots[1:]):
            assert earlier.items_answered <= later.items_answered
            assert earlier.spend <= later.spend

    def test_multiple_consumers_one_slow_one_fast(self):
        """The slow consumer's full queue never blocks publication to
        the fast one; both streams end on the same terminal snapshot."""

        async def run():
            async with _cdas(61).async_service(max_in_flight=2) as service:
                handle = service.submit(
                    "twitter-sentiment", movie_query("alpha", 0.9),
                    **_tsa_inputs(),
                )

                async def fast():
                    return [s async for s in handle.updates()]

                async def slow():
                    collected = []
                    async for snapshot in handle.updates(max_pending=1):
                        collected.append(snapshot)
                        for _ in range(50):
                            await asyncio.sleep(0)
                    return collected

                return await asyncio.gather(fast(), slow())

        fast_stream, slow_stream = asyncio.run(run())
        assert fast_stream[-1].state is QueryState.DONE
        assert slow_stream[-1].state is QueryState.DONE
        assert fast_stream[-1] == slow_stream[-1]
        # Coalescing means the slow stream saw at most as much.
        assert len(slow_stream) <= len(fast_stream)

    def test_mid_stream_unsubscribe_does_not_stall_the_driver(self):
        """Walking away after one snapshot (the SSE disconnect path)
        leaves the query running to completion."""

        async def run():
            async with _cdas(62).async_service(max_in_flight=2) as service:
                handle = service.submit(
                    "twitter-sentiment", movie_query("alpha", 0.9),
                    **_tsa_inputs(),
                )
                queue = handle.subscribe(max_pending=1)
                await queue.get()
                handle.unsubscribe(queue)
                handle.unsubscribe(queue)  # idempotent
                result = await handle.result()
                return result, len(handle._queues)

        result, open_queues = asyncio.run(run())
        assert len(result.records) == 12
        assert open_queues == 0

    def test_subscribe_rejects_non_positive_bounds(self):
        async def run():
            async with _cdas(63).async_service(max_in_flight=2) as service:
                handle = service.submit(
                    "twitter-sentiment", movie_query("alpha", 0.9),
                    **_tsa_inputs(),
                )
                with pytest.raises(ValueError):
                    handle.subscribe(max_pending=0)
                with pytest.raises(ValueError):
                    _ = [s async for s in handle.updates(max_pending=-1)]
                await handle.result()

        asyncio.run(run())
