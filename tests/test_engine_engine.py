"""Tests for the two-phase crowdsourcing engine (Algorithm 1 + 5)."""

from __future__ import annotations

import pytest

from repro.amt.hit import Question
from repro.amt.market import SimulatedMarket
from repro.engine.engine import CrowdsourcingEngine, EngineConfig
from repro.engine.privacy import PrivacyManager


def _questions(count: int, difficulty: float = 0.0) -> list[Question]:
    options = ("pos", "neu", "neg")
    return [
        Question(
            question_id=f"q{i}",
            options=options,
            truth=options[i % 3],
            difficulty=difficulty,
        )
        for i in range(count)
    ]


def _gold(count: int) -> list[Question]:
    options = ("pos", "neu", "neg")
    return [
        Question(question_id=f"gold{i}", options=options, truth=options[i % 3])
        for i in range(count)
    ]


@pytest.fixture()
def engine(small_pool) -> CrowdsourcingEngine:
    market = SimulatedMarket(small_pool, seed=21)
    return CrowdsourcingEngine(market, seed=21)


class TestEngineConfig:
    def test_defaults_valid(self):
        EngineConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sampling_rate": 1.0},
            {"verifier": "quantum"},
            {"min_answers_before_termination": 0},
            {"termination": "never"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)


class TestCalibration:
    def test_calibrate_learns_mu(self, engine):
        before = engine.mean_accuracy()
        mu = engine.calibrate(_gold(15), workers_per_hit=20, hits=2)
        assert before == 0.5  # prior
        assert 0.5 < mu < 0.95
        assert engine.mean_accuracy() == mu

    def test_calibrate_requires_gold(self, engine):
        with pytest.raises(ValueError):
            engine.calibrate([])

    def test_prediction_after_calibration(self, engine):
        engine.calibrate(_gold(15), workers_per_hit=20, hits=2)
        n = engine.predict_workers(0.9)
        assert n % 2 == 1
        assert n >= 3


class TestComposeQuestions:
    def test_gold_share(self, engine):
        from repro.util.rng import substream

        composed = engine.compose_questions(
            _questions(80), _gold(40), substream(1, "c")
        )
        gold = [q for q in composed if q.is_gold]
        assert len(gold) == 20  # 0.2 * 80 / 0.8
        assert len(composed) == 100

    def test_gold_ids_prefixed(self, engine):
        from repro.util.rng import substream

        composed = engine.compose_questions(_questions(8), _gold(10), substream(1, "c"))
        assert all(q.question_id.startswith("gold:") for q in composed if q.is_gold)

    def test_insufficient_gold_rejected(self, engine):
        from repro.util.rng import substream

        with pytest.raises(ValueError, match="gold"):
            engine.compose_questions(_questions(80), _gold(2), substream(1, "c"))


class TestRunBatch:
    def test_basic_run(self, engine):
        engine.calibrate(_gold(15), workers_per_hit=20, hits=2)
        result = engine.run_batch(_questions(10), 0.85, gold_pool=_gold(10))
        assert result.workers_hired >= 3
        assert result.assignments_collected == result.workers_hired
        assert len(result.records) == 10
        assert 0.0 <= result.accuracy <= 1.0
        assert result.cost == pytest.approx(
            engine.market.schedule.per_assignment * result.assignments_collected
        )

    def test_worker_count_override(self, engine):
        result = engine.run_batch(_questions(6), 0.9, gold_pool=_gold(10), worker_count=5)
        assert result.workers_hired == 5

    def test_empty_batch_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.run_batch([], 0.9)

    def test_records_align_with_questions(self, engine):
        questions = _questions(6)
        result = engine.run_batch(questions, 0.9, gold_pool=_gold(10), worker_count=7)
        assert {r.question.question_id for r in result.records} == {
            q.question_id for q in questions
        }
        for record in result.records:
            assert len(record.observation) == 7

    def test_verification_accuracy_reasonable(self, engine):
        result = engine.run_batch(_questions(30), 0.9, gold_pool=_gold(12), worker_count=11)
        assert result.accuracy >= 0.8

    def test_estimator_learns_from_batch_gold(self, engine):
        assert not engine.estimator.known_workers()
        engine.run_batch(_questions(10), 0.9, gold_pool=_gold(10), worker_count=5)
        assert engine.estimator.known_workers()


class TestEarlyTermination:
    def test_expmax_can_save_assignments(self, small_pool):
        market = SimulatedMarket(small_pool, seed=33)
        engine = CrowdsourcingEngine(
            market, seed=33, config=EngineConfig(termination="expmax")
        )
        engine.calibrate(_gold(15), workers_per_hit=20, hits=2)
        # Single easy question with a large forced crowd: the rule must
        # fire before all 31 assignments are consumed.
        result = engine.run_batch(
            _questions(1, difficulty=-0.5), 0.9, gold_pool=_gold(10), worker_count=31
        )
        assert result.terminated_early
        assert result.assignments_collected < 31
        assert result.assignments_cancelled > 0
        assert result.accuracy == 1.0

    def test_no_termination_collects_all(self, small_pool):
        market = SimulatedMarket(small_pool, seed=34)
        engine = CrowdsourcingEngine(market, seed=34)  # termination=None
        result = engine.run_batch(
            _questions(1), 0.9, gold_pool=_gold(10), worker_count=15
        )
        assert not result.terminated_early
        assert result.assignments_collected == 15


class TestVerifierConfig:
    def test_half_voting_engine_can_abstain(self, small_pool):
        market = SimulatedMarket(small_pool, seed=35)
        engine = CrowdsourcingEngine(
            market, seed=35, config=EngineConfig(verifier="half-voting")
        )
        result = engine.run_batch(
            _questions(40, difficulty=0.6), 0.9, gold_pool=_gold(10), worker_count=3
        )
        assert result.no_answer_ratio > 0.0

    def test_majority_voting_engine(self, small_pool):
        market = SimulatedMarket(small_pool, seed=36)
        engine = CrowdsourcingEngine(
            market, seed=36, config=EngineConfig(verifier="majority-voting")
        )
        result = engine.run_batch(
            _questions(10), 0.9, gold_pool=_gold(10), worker_count=5
        )
        assert all(
            r.verdict.method == "majority-voting" for r in result.records
        )


class TestPrivacyIntegration:
    def test_blocked_workers_answers_discarded(self, small_pool):
        market = SimulatedMarket(small_pool, seed=37)
        blocked = frozenset(p.worker_id for p in small_pool.profiles)
        engine = CrowdsourcingEngine(
            market,
            seed=37,
            privacy=PrivacyManager(blocked_workers=blocked),
        )
        result = engine.run_batch(
            _questions(4), 0.9, gold_pool=_gold(10), worker_count=5
        )
        # Everyone is blocked → no observations, explicit abstention.
        assert all(len(r.observation) == 0 for r in result.records)
        assert all(r.verdict.answer is None for r in result.records)

    def test_partial_blocking_keeps_rest(self, small_pool):
        market = SimulatedMarket(small_pool, seed=38)
        engine = CrowdsourcingEngine(
            market, seed=38, privacy=PrivacyManager(min_approval_rate=0.0)
        )
        result = engine.run_batch(
            _questions(4), 0.9, gold_pool=_gold(10), worker_count=5
        )
        assert all(len(r.observation) == 5 for r in result.records)
