"""Tests for the program executor (stream filtering, batching, summaries)."""

from __future__ import annotations

import pytest

from repro.core.presentation import QuestionOutcome
from repro.core.types import Verdict
from repro.engine.executor import ProgramExecutor, batched
from repro.engine.query import Query
from repro.tsa.tweets import Tweet


class TestBatched:
    def test_even_split(self):
        assert list(batched(range(6), 2)) == [[0, 1], [2, 3], [4, 5]]

    def test_trailing_partial(self):
        assert list(batched(range(5), 2)) == [[0, 1], [2, 3], [4]]

    def test_empty(self):
        assert list(batched([], 3)) == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(batched([1], 0))


def _tweet(text: str, tid: str = "t1") -> Tweet:
    return Tweet(
        tweet_id=tid, movie="Thor", text=text, sentiment="positive", difficulty=0.0
    )


class TestFilterStream:
    def test_keyword_filter(self):
        executor = ProgramExecutor(text_of=lambda t: t.text)
        query = Query(keywords=("Thor",), required_accuracy=0.9, domain=("a", "b"))
        tweets = [
            _tweet("thor was great", "t1"),
            _tweet("loki stole the show", "t2"),
            _tweet("THOR again", "t3"),
        ]
        kept = list(executor.filter_stream(tweets, query))
        assert [t.tweet_id for t in kept] == ["t1", "t3"]

    def test_buffer_batches(self):
        executor = ProgramExecutor(text_of=lambda t: t.text)
        query = Query(keywords=("thor",), required_accuracy=0.9, domain=("a", "b"))
        tweets = [_tweet(f"thor {i}", f"t{i}") for i in range(5)]
        batches = list(executor.buffer_batches(tweets, query, batch_size=2))
        assert [len(b) for b in batches] == [2, 2, 1]


class TestSummarize:
    def test_uses_query_domain(self):
        executor = ProgramExecutor()
        query = Query(
            keywords=("Thor",),
            required_accuracy=0.9,
            domain=("positive", "neutral", "negative"),
            subject="Thor",
        )
        outcomes = [
            QuestionOutcome(
                question_id="t1",
                verdict=Verdict(answer="positive", confidence=0.9),
                accepted=True,
            ),
            QuestionOutcome(
                question_id="t2",
                verdict=Verdict(answer="negative", confidence=0.8),
                accepted=True,
            ),
        ]
        report = executor.summarize(query, outcomes)
        assert report.subject == "Thor"
        assert report.percentage("positive") == pytest.approx(0.5)
        assert report.percentage("negative") == pytest.approx(0.5)
