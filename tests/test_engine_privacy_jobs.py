"""Tests for the privacy manager and job manager."""

from __future__ import annotations

import pytest

from repro.amt.worker import WorkerProfile
from repro.engine.jobs import JobManager, JobSpec
from repro.engine.privacy import MASK, PrivacyManager
from repro.engine.query import Query
from repro.engine.templates import QueryTemplate
from repro.tsa.app import build_tsa_spec


class TestPrivacyManagerMasking:
    def test_masks_handles(self):
        pm = PrivacyManager()
        assert pm.sanitize_text("ask @john_doe about it") == f"ask {MASK} about it"

    def test_masks_emails(self):
        pm = PrivacyManager()
        assert MASK in pm.sanitize_text("mail me: a.b+c@example.org thanks")

    def test_masks_long_numbers(self):
        pm = PrivacyManager()
        out = pm.sanitize_text("call 5551234567 now, room 42 stays")
        assert MASK in out
        assert "42" in out  # short numbers are not sensitive

    def test_extra_patterns(self):
        pm = PrivacyManager(extra_patterns=(r"project-\w+",))
        assert pm.sanitize_text("project-tiger is live") == f"{MASK} is live"

    def test_clean_text_untouched(self):
        pm = PrivacyManager()
        text = "a perfectly ordinary tweet about a movie"
        assert pm.sanitize_text(text) == text


class TestPrivacyManagerWorkerGate:
    def _worker(self, approval: float, worker_id: str = "w1") -> WorkerProfile:
        return WorkerProfile(worker_id, 0.7, approval)

    def test_approval_gate(self):
        pm = PrivacyManager(min_approval_rate=0.9)
        assert pm.worker_allowed(self._worker(0.95))
        assert not pm.worker_allowed(self._worker(0.5))

    def test_blocklist(self):
        pm = PrivacyManager(blocked_workers=frozenset({"bad"}))
        assert not pm.worker_allowed(self._worker(1.0, "bad"))
        assert pm.worker_allowed(self._worker(1.0, "good"))

    def test_validation(self):
        with pytest.raises(ValueError):
            PrivacyManager(min_approval_rate=1.5)


class TestJobManager:
    def _spec(self, name: str = "job-a") -> JobSpec:
        return JobSpec(
            name=name,
            template=QueryTemplate(
                job_name=name, instructions="i", item_label="Item", prompt="p"
            ),
            computer_tasks=("filter",),
            human_tasks=("classify",),
        )

    def test_register_and_plan(self):
        jm = JobManager()
        jm.register(self._spec())
        query = Query(keywords=("x",), required_accuracy=0.9, domain=("a", "b"))
        plan = jm.plan("job-a", query)
        assert plan.job_name == "job-a"
        assert "classify" in plan.describe()
        assert jm.registered_jobs == ("job-a",)

    def test_duplicate_registration_rejected(self):
        jm = JobManager()
        jm.register(self._spec())
        with pytest.raises(ValueError, match="already registered"):
            jm.register(self._spec())

    def test_unknown_job_rejected(self):
        jm = JobManager()
        with pytest.raises(KeyError, match="no job"):
            jm.plan("ghost", Query(keywords=("x",), required_accuracy=0.9, domain=("a", "b")))

    def test_spec_needs_both_sides(self):
        with pytest.raises(ValueError, match="both"):
            JobSpec(
                name="half",
                template=QueryTemplate(
                    job_name="half", instructions="i", item_label="I", prompt="p"
                ),
                computer_tasks=(),
                human_tasks=("classify",),
            )

    def test_tsa_spec_registers(self):
        jm = JobManager()
        jm.register(build_tsa_spec())
        assert "twitter-sentiment" in jm.registered_jobs

    def test_plan_rejects_trivial_domains(self):
        """plan() enforces the non-trivial-domain contract its docstring
        promises, even for query-like objects that bypassed Query's own
        constructor validation."""
        from types import SimpleNamespace

        jm = JobManager()
        jm.register(self._spec())
        for domain in ((), ("only",), ("dup", "dup")):
            stub = SimpleNamespace(subject="stub", domain=domain)
            with pytest.raises(ValueError, match="trivial answer domain"):
                jm.plan("job-a", stub)
        # None / missing domain is trivial too, not an AttributeError.
        with pytest.raises(ValueError, match="trivial answer domain"):
            jm.plan("job-a", SimpleNamespace(subject="stub", domain=None))

    def test_plan_accepts_real_queries(self):
        jm = JobManager()
        jm.register(self._spec())
        query = Query(keywords=("x",), required_accuracy=0.9, domain=("a", "b"))
        assert jm.plan("job-a", query).query is query
