"""Tests for Query (Definition 1) and HIT templates (Figure 3)."""

from __future__ import annotations

import pytest

from repro.amt.hit import Question
from repro.engine.query import Query
from repro.engine.templates import QueryTemplate, render_hit_description


def _query(**kwargs) -> Query:
    defaults = dict(
        keywords=("iPhone4S", "iPhone 4S"),
        required_accuracy=0.95,
        domain=("Best Ever", "Good", "Not Satisfied"),
        timestamp="2011-10-14",
        window=10,
    )
    defaults.update(kwargs)
    return Query(**defaults)


class TestQuery:
    def test_paper_example(self):
        q = _query()
        assert q.subject == "iPhone4S"  # defaults to first keyword
        assert q.answer_domain().m == 3

    def test_keyword_matching_case_insensitive(self):
        q = _query()
        assert q.matches("just got my IPHONE4S today")
        assert q.matches("the iphone 4s is ok")
        assert not q.matches("galaxy nexus all the way")

    def test_explicit_subject(self):
        assert _query(subject="Apple Phone").subject == "Apple Phone"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"keywords": ()},
            {"required_accuracy": 0.0},
            {"required_accuracy": 1.0},
            {"domain": ("only",)},
            {"domain": ("a", "a")},
            {"window": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            _query(**kwargs)


class TestQueryTemplate:
    def _template(self, **kwargs) -> QueryTemplate:
        defaults = dict(
            job_name="twitter-sentiment",
            instructions="Classify each tweet.",
            item_label="Tweet",
            prompt="What is the opinion of this review?",
        )
        defaults.update(kwargs)
        return QueryTemplate(**defaults)

    def _question(self) -> Question:
        return Question(
            question_id="t1",
            options=("positive", "negative"),
            truth="positive",
            payload="Great movie <3 @friend",
        )

    def test_renders_sections_per_question(self):
        template = self._template()
        q2 = Question(
            question_id="t2", options=("positive", "negative"), truth="negative",
            payload="meh",
        )
        html = template.render_hit([self._question(), q2])
        assert html.count('<div class="question"') == 2
        assert 'data-job="twitter-sentiment"' in html

    def test_escapes_payload(self):
        html = self._template().render_question(self._question())
        assert "<3" not in html  # must be escaped
        assert "&lt;3" in html

    def test_options_become_radios(self):
        html = self._template().render_question(self._question())
        assert html.count('type="radio"') == 2
        assert 'value="positive"' in html

    def test_text_filter_applied(self):
        template = self._template(text_filter=lambda t: t.replace("@friend", "[x]"))
        html = template.render_question(self._question())
        assert "@friend" not in html
        assert "[x]" in html

    def test_empty_hit_rejected(self):
        with pytest.raises(ValueError):
            self._template().render_hit([])

    def test_function_alias(self):
        template = self._template()
        assert render_hit_description(template, [self._question()]) == (
            template.render_hit([self._question()])
        )
