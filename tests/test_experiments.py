"""Tests for the experiment modules: each runs (downscaled) and shows the
paper's qualitative shape."""

from __future__ import annotations

import pytest

from repro.experiments import all_experiments
from repro.experiments import (
    fig05_svm_vs_crowd,
    fig06_worker_prediction,
    fig07_accuracy_vs_workers,
    fig08_accuracy_vs_required,
    fig09_no_answer_vs_workers,
    fig10_no_answer_vs_reviews,
    fig11_arrival_sequences,
    fig14_approval_vs_accuracy,
    fig15_sampling_worker_accuracy,
    fig16_sampling_verification,
    fig17_alipr_vs_crowd,
    fig18_it_accuracy,
    table01_presentation,
    table34_verification_example,
)
from repro.experiments.fig1213_termination import run_fig12, run_fig13, simulate

SEED = 2012


class TestRegistry:
    def test_every_table_and_figure_registered(self):
        registry = all_experiments()
        assert len(registry) == 17
        assert {"table1", "table3+4"} <= set(registry)
        assert {f"fig{i}" for i in range(4, 19)} <= set(registry)


class TestTable1:
    def test_percentages_track_ground_truth(self):
        res = table01_presentation.run(SEED, review_count=60, workers_per_review=9)
        report = res.extras["report"]
        assert abs(report.percentage("Best Ever") - 0.6) < 0.15
        assert abs(report.percentage("Not Satisfied") - 0.3) < 0.15

    def test_reasons_recovered(self):
        res = table01_presentation.run(SEED, review_count=60, workers_per_review=9)
        report = res.extras["report"]
        best = next(r for r in report.rows if r.label == "Best Ever")
        assert set(best.reasons) <= {"Siri", "iOS 5", "Performance"}
        assert best.reasons


class TestFig4:
    def test_session_resolves_and_skews_positive(self):
        from repro.experiments import fig04_live_view

        res = fig04_live_view.run(SEED, tweet_count=12, checkpoint_minutes=(4, 14))
        mid, final = res.rows
        assert mid["tweets_seen"] <= final["tweets_seen"] == 12
        assert final["resolved"] == 12
        assert final["positive_pct"] > final["negative_pct"]


class TestTable34:
    def test_exact_paper_numbers(self):
        res = table34_verification_example.run()
        by_model = {row["model"]: row for row in res.rows}
        assert by_model["half-voting"]["answer"] == "pos"
        assert by_model["majority-voting"]["answer"] == "pos"
        v = by_model["verification"]
        assert v["answer"] == "neg"
        assert v["pos"] == pytest.approx(0.329, abs=1e-3)
        assert v["neu"] == pytest.approx(0.176, abs=1e-3)
        assert v["neg"] == pytest.approx(0.495, abs=1e-3)


class TestFig5:
    def test_crowd_beats_svm_with_five_workers(self):
        res = fig05_svm_vs_crowd.run(
            SEED, tweets_per_test_movie=60, train_movies=15, tweets_per_train_movie=40
        )
        for row in res.rows:
            assert row["tsa_5_workers"] > row["libsvm"]
            assert row["tsa_5_workers"] >= row["tsa_1_workers"] - 0.05

    def test_svm_in_paper_band(self):
        res = fig05_svm_vs_crowd.run(
            SEED, tweets_per_test_movie=60, train_movies=15, tweets_per_train_movie=40
        )
        for row in res.rows:
            assert 0.4 <= row["libsvm"] <= 0.8


class TestFig6:
    def test_refined_at_most_conservative(self):
        res = fig06_worker_prediction.run()
        for row in res.rows:
            assert row["binary_search"] <= row["conservative"]

    def test_both_monotone_in_c(self):
        res = fig06_worker_prediction.run()
        cons = res.column("conservative")
        refined = res.column("binary_search")
        assert cons == sorted(cons)
        assert refined == sorted(refined)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig07_accuracy_vs_workers.run(SEED, review_count=120, max_workers=15)

    def test_verification_dominates(self, result):
        for row in result.rows:
            assert row["verification"] >= row["half_voting"] - 0.03

    def test_accuracy_improves_with_workers(self, result):
        first, last = result.rows[0], result.rows[-1]
        assert last["verification"] > first["verification"]


class TestFig8:
    def test_verification_meets_requirement(self):
        res = fig08_accuracy_vs_required.run(SEED, review_count=120)
        for row in res.rows:
            assert row["verification"] >= row["required_accuracy"] - 0.03


class TestFig910:
    def test_half_voting_abstains_more(self):
        res = fig09_no_answer_vs_workers.run(SEED, review_count=120, max_workers=15)
        # From 7 workers on, half-voting abstains at least as often.
        for row in res.rows[3:]:
            assert row["half_voting"] >= row["majority_voting"] - 1e-9

    def test_no_answer_flat_in_reviews(self):
        res = fig10_no_answer_vs_reviews.run(SEED, max_reviews=160, step=40)
        ratios = res.column("half_voting")
        assert max(ratios) - min(ratios) < 0.25


class TestFig11:
    def test_sequences_converge(self):
        res = fig11_arrival_sequences.run(
            SEED, worker_count=12, review_count=20, sequences=3
        )
        last = res.rows[-1]
        finals = [last[f"sequence_{i}"] for i in (1, 2, 3)]
        assert max(finals) - min(finals) < 1e-9

    def test_early_divergence_exists(self):
        res = fig11_arrival_sequences.run(
            SEED, worker_count=12, review_count=20, sequences=4
        )
        first = res.rows[0]
        earlies = [first[f"sequence_{i}"] for i in (1, 2, 3, 4)]
        assert max(earlies) - min(earlies) > 0.0


class TestFig1213:
    @pytest.fixture(scope="class")
    def cells(self):
        return simulate(SEED, review_count=60, c_values=(0.7, 0.85))

    def test_all_strategies_save_workers(self, cells):
        for cell in cells:
            if cell.predicted_workers > 3:
                assert cell.mean_answers_used < cell.predicted_workers

    def test_minmax_most_conservative(self, cells):
        by_c: dict[float, dict[str, float]] = {}
        for cell in cells:
            by_c.setdefault(cell.required_accuracy, {})[cell.strategy] = (
                cell.mean_answers_used
            )
        for strategies in by_c.values():
            assert strategies["minmax"] >= strategies["minexp"] - 1e-9
            assert strategies["minmax"] >= strategies["expmax"] - 1e-9

    def test_row_shapes(self):
        f12 = run_fig12(SEED, review_count=40, c_values=(0.7, 0.85))
        f13 = run_fig13(SEED, review_count=40, c_values=(0.7, 0.85))
        assert len(f12.rows) == 2
        assert set(f12.rows[0]) >= {"minmax", "minexp", "expmax"}
        for row in f13.rows:
            assert row["expmax"] >= row["required_accuracy"] - 0.08


class TestFig14:
    def test_approval_piles_high_accuracy_spreads(self):
        res = fig14_approval_vs_accuracy.run(SEED, questions_per_worker=40, worker_sample=200)
        top = res.rows[-1]  # the 95-100 bin
        assert top["approval_rate_pct"] > 40
        assert top["real_accuracy_pct"] < 10
        # Real accuracy has mass in the mid bins.
        mid = [r for r in res.rows if r["bin"] in ("60-65", "65-70", "70-75")]
        assert sum(r["real_accuracy_pct"] for r in mid) > 20


class TestFig15:
    def test_error_decreases_with_rate(self):
        res = fig15_sampling_worker_accuracy.run(SEED, worker_sample=100)
        errors = res.column("average_error")
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] == 0.0

    def test_mean_accuracy_stable(self):
        res = fig15_sampling_worker_accuracy.run(SEED, worker_sample=100)
        means = res.column("mean_accuracy")
        assert max(means) - min(means) < 0.05


class TestFig16:
    def test_higher_rate_never_much_worse(self):
        res = fig16_sampling_verification.run(
            SEED, review_count=60, c_min=0.7, c_max=0.9, c_step=0.1
        )
        for row in res.rows:
            assert row["rate_100"] >= row["rate_5"] - 0.05
            assert row["rate_20"] >= row["rate_5"] - 0.05


class TestFig17:
    @pytest.fixture(scope="class")
    def result(self):
        return fig17_alipr_vs_crowd.run(SEED, images_per_subject=10)

    def test_alipr_in_band(self, result):
        for row in result.rows:
            assert 0.02 <= row["alipr"] <= 0.45

    def test_crowd_dominates_alipr(self, result):
        for row in result.rows:
            assert row["crowd_1_workers"] > row["alipr"] + 0.3
            assert row["crowd_5_workers"] >= row["crowd_1_workers"] - 0.05


class TestFig18:
    def test_meets_requirement(self):
        res = fig18_it_accuracy.run(
            SEED, images_per_subject=4, c_min=0.8, c_max=0.92, c_step=0.04
        )
        for row in res.rows:
            assert row["real_accuracy"] >= row["required_accuracy"] - 0.02


class TestExperimentResultAPI:
    def test_render_and_column(self):
        res = fig06_worker_prediction.run()
        text = res.render()
        assert "[fig6]" in text
        assert res.column("conservative")
        with pytest.raises(KeyError):
            res.column("nonexistent")
