"""Tests for the EXPERIMENTS.md report builder and the result base class."""

from __future__ import annotations

import pytest

from repro.experiments import all_experiments
from repro.experiments.base import ExperimentResult
from repro.experiments.report import PAPER_CLAIMS, build_report


class TestPaperClaims:
    def test_claims_cover_every_registered_experiment(self):
        assert set(PAPER_CLAIMS) == set(all_experiments())

    def test_claims_are_substantive(self):
        for claim in PAPER_CLAIMS.values():
            assert len(claim) > 40  # a real sentence, not a placeholder


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report(self):
        # Full default-size report; cached for the class.
        return build_report()

    def test_contains_every_experiment_section(self, report):
        for experiment_id in all_experiments():
            assert f"## {experiment_id}:" in report

    def test_contains_ablation_section(self, report):
        assert "# Ablations and extension studies" in report
        assert "ablation-colluders" in report
        assert "latency-study" in report

    def test_paper_vs_measured_structure(self, report):
        assert report.count("**Paper reports:**") == len(all_experiments())
        assert report.count("**Measured:**") == len(all_experiments())

    def test_table34_exact_numbers_present(self, report):
        assert "0.495" in report
        assert "0.329" in report


class TestExperimentResult:
    def _result(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="x",
            title="t",
            rows=[{"a": 1, "b": 2.0}, {"a": 3, "b": 4.0}],
            notes="n",
        )

    def test_render_sections(self):
        text = self._result().render()
        assert text.startswith("[x] t")
        assert "notes: n" in text

    def test_column(self):
        assert self._result().column("a") == [1, 3]

    def test_column_unknown_key(self):
        with pytest.raises(KeyError, match="no column"):
            self._result().column("zzz")

    def test_column_empty_rows(self):
        empty = ExperimentResult(experiment_id="x", title="t", rows=[])
        with pytest.raises(ValueError, match="no rows"):
            empty.column("a")

    def test_render_without_notes(self):
        result = ExperimentResult(experiment_id="x", title="t", rows=[{"a": 1}])
        assert "notes:" not in result.render()

    def test_to_csv(self):
        csv_text = self._result().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.0"
        assert lines[2] == "3,4.0"

    def test_to_csv_empty_rejected(self):
        empty = ExperimentResult(experiment_id="x", title="t", rows=[])
        with pytest.raises(ValueError, match="no rows"):
            empty.to_csv()
