"""Pin `repro.util.fastrng` against NumPy's own generators, bit for bit.

The vectorized market path is only sound if every primitive here equals
what ``np.random.default_rng(seed)`` produces.  These tests compare raw
words, doubles, bounded integers (including the buffered 32-bit Lemire
path and its buffer's survival across interleaved ``random()`` calls),
and the state-transplant dict, across adversarial seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import fastrng
from repro.util.rng import derive_seed

# Edge seeds: zero entropy, 32-bit boundary straddlers, max derive_seed
# output, plus real substream seeds the market actually uses.
SEEDS = [
    0,
    1,
    2**32 - 1,
    2**32,
    2**32 + 1,
    2**63 - 1,
    2**64 - 1,
    derive_seed(2012, "answers:hit-00000:w00042"),
    derive_seed(7, "accept:hit-00003"),
    123456789,
]


def _lanes(seeds, count):
    state, inc = fastrng.pcg64_init(np.array(seeds, dtype=np.uint64))
    _, words = fastrng.next_words(state, inc, count)
    return words


def test_raw_words_match_numpy() -> None:
    words = _lanes(SEEDS, 64)
    for lane, seed in enumerate(SEEDS):
        expected = np.random.default_rng(seed).bit_generator.random_raw(64)
        assert words[lane].tolist() == expected.tolist(), f"seed {seed}"


def test_doubles_match_generator_random() -> None:
    words = _lanes(SEEDS, 32)
    doubles = fastrng.doubles_from_words(words)
    for lane, seed in enumerate(SEEDS):
        rng = np.random.default_rng(seed)
        expected = [rng.random() for _ in range(32)]
        assert doubles[lane].tolist() == expected, f"seed {seed}"


@pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 26, 100, 255])
def test_lemire32_matches_integers(n: int) -> None:
    # One scalar Generator.integers(n) consumes the LOW 32-bit half of a
    # fresh word and buffers the HIGH half for the next call; replicate
    # that split and compare 40 consecutive draws per seed.
    words = _lanes(SEEDS, 20)
    for lane, seed in enumerate(SEEDS):
        halves = np.empty(40, dtype=np.uint64)
        halves[0::2] = words[lane] & np.uint64(0xFFFFFFFF)
        halves[1::2] = words[lane] >> np.uint64(32)
        values, rejected = fastrng.lemire32(halves, n)
        rng = np.random.default_rng(seed)
        expected = [int(rng.integers(n)) for _ in range(40)]
        for k in range(40):
            if rejected[k]:
                # Rejection desynchronizes the half-word stream; stop
                # comparing this lane (the market falls back to scalar
                # replay in this case).
                break
            assert int(values[k]) == expected[k], f"seed {seed} draw {k}"


def test_lemire32_rejection_probability_is_tiny() -> None:
    # For the option counts HITs use, the threshold is a few units out of
    # 2**32 — the fallback path should essentially never trigger.
    for n in (2, 3, 4, 5, 10):
        assert fastrng.lemire32_threshold(n) < n


def test_buffer_survives_interleaved_random() -> None:
    # integers(n) buffers a 32-bit half; random() consumes a full fresh
    # word WITHOUT clearing that buffer.  The market's word-position
    # algebra depends on this exact behaviour.
    for seed in (0, 3, 42):
        rng = np.random.default_rng(seed)
        raw = np.random.default_rng(seed).bit_generator.random_raw(200)
        halves = []
        for w in raw:
            halves.append(int(w) & 0xFFFFFFFF)
            halves.append(int(w) >> 32)
        word_pos = 0  # next unconsumed full word
        buffered: int | None = None
        for step in range(100):
            if step % 3 == 2:
                expected = (int(raw[word_pos]) >> 11) * (1.0 / 2**53)
                word_pos += 1
                assert rng.random() == expected, f"seed {seed} step {step}"
            else:
                if buffered is None:
                    half = int(raw[word_pos]) & 0xFFFFFFFF
                    buffered = int(raw[word_pos]) >> 32
                    word_pos += 1
                else:
                    half = buffered
                    buffered = None
                values, rejected = fastrng.lemire32(
                    np.array([half], dtype=np.uint64), 26
                )
                assert not rejected[0]
                assert int(rng.integers(26)) == int(values[0]), (
                    f"seed {seed} step {step}"
                )


def test_state_transplant_reproduces_default_rng() -> None:
    state, inc = fastrng.pcg64_init(np.array(SEEDS, dtype=np.uint64))
    shared = np.random.Generator(np.random.PCG64())
    for lane, seed in enumerate(SEEDS):
        s, i = fastrng.state_ints(state, inc, lane)
        shared.bit_generator.state = fastrng.pcg64_state_dict(s, i)
        reference = np.random.default_rng(seed)
        assert shared.random() == reference.random()
        assert int(shared.integers(7)) == int(reference.integers(7))
        assert shared.lognormal(mean=2.0, sigma=0.8) == reference.lognormal(
            mean=2.0, sigma=0.8
        )


def test_pack_states_matches_state_ints() -> None:
    state, inc = fastrng.pcg64_init(np.array(SEEDS, dtype=np.uint64))
    blob = fastrng.pack_states(state, inc)
    for lane in range(len(SEEDS)):
        s, i = fastrng.state_ints(state, inc, lane)
        assert fastrng.state_dict_at(blob, lane) == fastrng.pcg64_state_dict(s, i)


def test_standard_normal_common_matches_generator() -> None:
    # The ziggurat common path (~98.6 % of draws) consumes exactly one
    # word and must reproduce Generator.standard_normal bit for bit; at
    # the first non-common word the scalar path enters a variable-length
    # rejection loop, so comparison stops there (the market transplants
    # state and replays such lanes).
    words = _lanes(SEEDS, 48)
    values, common = fastrng.standard_normal_common(words)
    for lane, seed in enumerate(SEEDS):
        rng = np.random.default_rng(seed)
        compared = 0
        for k in range(48):
            if not common[lane, k]:
                break
            assert float(values[lane, k]) == rng.standard_normal(), (
                f"seed {seed} draw {k}"
            )
            compared += 1
        assert compared > 0, f"seed {seed}: no common-path draws at all"


def test_seeds_from_digests_matches_derive_seed() -> None:
    import hashlib

    labels = [f"answers:hit-{i:05d}:w{i:05d}" for i in range(12)]
    blob = b"".join(
        hashlib.sha256(f"2012:{label}".encode()).digest() for label in labels
    )
    seeds = fastrng.seeds_from_digests(blob)
    assert seeds.tolist() == [derive_seed(2012, label) for label in labels]


def test_integers_one_consumes_nothing() -> None:
    # n == 1 short-circuits to 0 without touching the stream; the word
    # consumption model counts such draws as zero-width.
    rng = np.random.default_rng(5)
    before = np.random.default_rng(5).bit_generator.random_raw(1)[0]
    assert int(rng.integers(1)) == 0
    assert rng.bit_generator.random_raw(1)[0] == before
