"""In-process tests for the HTTP/ASGI gateway (DESIGN.md §13).

Everything here drives :class:`repro.gateway.GatewayApp` directly as an
ASGI callable on the test's own event loop — no sockets, fully
deterministic — via :class:`repro.gateway.InProcessClient`.  The suite
pins the wire contract: auth, plan-gated submit (402 + counter-offer
parity with explain), idempotent retries, the frozen-ledger cancel view,
SSE framing, and bit-identical outcomes versus a direct in-process
``AsyncSchedulerService`` run of the same submissions.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.amt.market import SimulatedMarket
from repro.amt.pool import PoolConfig, WorkerPool
from repro.amt.slow import SlowBackend
from repro.gateway import GatewayApp, InProcessClient, TokenAuth, parse_sse
from repro.scenarios import canonical_json, result_summary
from repro.system import CDAS
from repro.tsa.app import movie_query
from repro.tsa.tweets import generate_tweets

TOKENS = {"acme-token": "acme", "globex-token": "globex"}

#: Wall-clock delay for the heartbeat test's dormant spells.
DELAY = 0.02


def _cdas(seed: int, slow: float | None = None) -> CDAS:
    pool = WorkerPool.from_config(PoolConfig(size=120), seed=7)
    market = SimulatedMarket(pool, seed=seed)
    if slow is not None:
        market = SlowBackend(market, delay=slow)
    return CDAS.with_default_jobs(market, seed=seed)


def _tsa_inputs(movies=("alpha", "beta"), per_movie=12, seed=5, workers=5):
    tweets = generate_tweets(list(movies), per_movie=per_movie, seed=seed)
    gold = generate_tweets(["gold-movie"], per_movie=10, seed=seed + 1)
    return {
        "tweets": tweets,
        "gold_tweets": gold,
        "worker_count": workers,
        "batch_size": 6,
    }


def _make_app(
    seed: int = 52,
    budget: float | None = None,
    heartbeat: float | None = None,
    journal=None,
    slow: float | None = None,
) -> GatewayApp:
    cdas = _cdas(seed, slow=slow)
    app = cdas.gateway(
        TOKENS,
        name="svc",
        presets={"demo-tsa": _tsa_inputs()},
        max_in_flight=2,
        heartbeat=heartbeat,
        journal=journal,
    )
    service = app.mux["svc"]
    service.register_tenant("acme", priority=2.0, budget_cap=budget)
    service.register_tenant("globex", priority=1.0, budget_cap=budget)
    return app


def _query_body(movie: str, accuracy: float = 0.9) -> dict:
    """The JSON shape a client posts for ``movie_query(movie, accuracy)``."""
    return {
        "job": "twitter-sentiment",
        "query": {
            "keywords": [movie],
            "required_accuracy": accuracy,
            "domain": ["positive", "neutral", "negative"],
            "window": 24,
            "subject": movie,
        },
        "inputs": {"$preset": "demo-tsa"},
    }


async def _run_to_end(client: InProcessClient, query_id: str, **kwargs):
    """Stream a query's SSE to its ``end`` frame (drives it terminal)."""
    response = await client.get(f"/v1/queries/{query_id}/events", **kwargs)
    assert response.status == 200
    frames = parse_sse(response.body)
    assert frames[-1][0] == "end"
    return frames


class TestAuth:
    def test_healthz_is_unauthenticated(self):
        async def run():
            client = InProcessClient(_make_app())
            return await client.get("/v1/healthz")

        response = asyncio.run(run())
        assert response.status == 200
        assert response.json()["status"] == "ok"
        assert response.json()["services"]["svc"]["idle"] is True

    def test_missing_and_unknown_tokens_answer_401(self):
        async def run():
            client = InProcessClient(_make_app())
            missing = await client.post("/v1/queries", _query_body("alpha"))
            unknown = await client.post(
                "/v1/queries", _query_body("alpha"), token="wrong"
            )
            return missing, unknown

        missing, unknown = asyncio.run(run())
        for response in (missing, unknown):
            assert response.status == 401
            assert response.json()["error"] == "unauthorized"
            assert response.header("www-authenticate") == "Bearer"

    def test_token_auth_rejects_malformed_header(self):
        auth = TokenAuth(TOKENS)
        assert auth.authenticate([(b"authorization", b"Bearer acme-token")]) == "acme"
        from repro.gateway import AuthError

        for header in (b"acme-token", b"Basic acme-token", b"Bearer"):
            with pytest.raises(AuthError):
                auth.authenticate([(b"authorization", header)])


class TestSubmitLifecycle:
    def test_submit_poll_result_roundtrip(self):
        async def run():
            app = _make_app()
            client = InProcessClient(app, token="acme-token")
            submitted = await client.post(
                "/v1/queries", _query_body("alpha")
            )
            assert submitted.status == 201, submitted.body
            payload = submitted.json()
            query_id = payload["id"]
            assert submitted.header("location") == f"/v1/queries/{query_id}"
            # Plan-first is the default mode: the 201 carries the plan.
            assert payload["plan"]["tenant"] == "acme"
            await _run_to_end(client, query_id)
            final = await client.get(f"/v1/queries/{query_id}")
            return query_id, final

        query_id, final = asyncio.run(run())
        assert query_id == "svc-0"
        payload = final.json()
        assert payload["progress"]["state"] == "done"
        assert payload["progress"]["spend"] > 0
        assert payload["result"]["cost"] > 0
        assert payload["result"]["verdicts"]

    def test_gateway_outcome_bit_identical_to_direct_run(self):
        """The tentpole equivalence: the same submissions through HTTP
        and through a plain in-process async service produce the same
        canonical progress + result JSON, byte for byte."""

        async def via_gateway():
            app = _make_app(seed=53)
            client = InProcessClient(app, token="acme-token")
            outcomes = []
            for movie in ("alpha", "beta"):
                submitted = await client.post("/v1/queries", _query_body(movie))
                assert submitted.status == 201, submitted.body
                query_id = submitted.json()["id"]
                await _run_to_end(client, query_id)
                final = (await client.get(f"/v1/queries/{query_id}")).json()
                outcomes.append(
                    {"progress": final["progress"], "result": final["result"]}
                )
            return outcomes

        async def direct():
            async with _cdas(53).async_service(
                max_in_flight=2, name="svc"
            ) as service:
                service.register_tenant("acme", priority=2.0)
                service.register_tenant("globex", priority=1.0)
                outcomes = []
                for movie in ("alpha", "beta"):
                    handle = service.submit(
                        "twitter-sentiment",
                        movie_query(movie, 0.9),
                        tenant="acme",
                        budget=None,
                        priority=None,
                        reserve=True,
                        **_tsa_inputs(),
                    )
                    result = await handle.result()
                    outcomes.append(
                        {
                            "progress": handle.progress().to_dict(),
                            "result": result_summary(result),
                        }
                    )
                return outcomes

        http_outcomes = asyncio.run(via_gateway())
        direct_outcomes = asyncio.run(direct())
        assert canonical_json(http_outcomes) == canonical_json(direct_outcomes)

    def test_idempotency_key_replays_the_original(self):
        async def run():
            app = _make_app()
            client = InProcessClient(app, token="acme-token")
            headers = {"Idempotency-Key": "retry-1"}
            first = await client.post(
                "/v1/queries", _query_body("alpha"), headers=headers
            )
            second = await client.post(
                "/v1/queries", _query_body("alpha"), headers=headers
            )
            metrics = await client.get("/v1/metrics")
            return first, second, metrics

        first, second, metrics = asyncio.run(run())
        assert first.status == 201 and second.status == 200
        assert first.json()["id"] == second.json()["id"]
        counters = metrics.json()["gateway"]
        assert counters["submits"] == 1
        assert counters["idempotent_replays"] == 1

    def test_idempotency_keys_are_scoped_per_tenant(self):
        async def run():
            app = _make_app()
            client = InProcessClient(app)
            headers = {"Idempotency-Key": "shared"}
            acme = await client.post(
                "/v1/queries", _query_body("alpha"),
                headers=headers, token="acme-token",
            )
            globex = await client.post(
                "/v1/queries", _query_body("beta"),
                headers=headers, token="globex-token",
            )
            return acme, globex

        acme, globex = asyncio.run(run())
        assert acme.status == 201 and globex.status == 201
        assert acme.json()["id"] != globex.json()["id"]

    def test_cancel_freezes_the_ledger_view(self):
        async def run():
            app = _make_app()
            client = InProcessClient(app, token="acme-token")
            submitted = await client.post("/v1/queries", _query_body("alpha"))
            query_id = submitted.json()["id"]
            cancelled = await client.delete(f"/v1/queries/{query_id}")
            # Give the driver room to (incorrectly) keep charging.
            await app.mux["svc"].wait_idle()
            first = await client.get(f"/v1/queries/{query_id}")
            second = await client.get(f"/v1/queries/{query_id}")
            metrics = await client.get("/v1/metrics")
            repeat = await client.delete(f"/v1/queries/{query_id}")
            return cancelled, first, second, metrics, repeat

        cancelled, first, second, metrics, repeat = asyncio.run(run())
        assert cancelled.status == 200
        payload = cancelled.json()
        assert payload["cancelled"] is True
        assert payload["progress"]["state"] == "cancelled"
        # Frozen: later polls observe the exact bytes of the cancel-time
        # snapshot, and the service ledger totals match the cancel view.
        assert first.body == second.body
        assert first.json()["progress"] == payload["progress"]
        ledger_now = metrics.json()["services"]["svc"]["ledger"]
        assert ledger_now["total_cost"] == payload["ledger"]["total_cost"]
        # Deleting an already-terminal query is idempotent.
        assert repeat.status == 200
        assert repeat.json()["cancelled"] is False

    def test_submit_plain_mode_skips_the_reservation(self):
        async def run():
            app = _make_app()
            client = InProcessClient(app, token="acme-token")
            body = dict(_query_body("alpha"), mode="plain")
            plain = await client.post("/v1/queries", body)
            plain_reserved = app.mux["svc"].service.tenant_reserved("acme")

            reserving = _make_app()
            rclient = InProcessClient(reserving, token="acme-token")
            reserved = await rclient.post("/v1/queries", _query_body("alpha"))
            upfront = reserving.mux["svc"].service.tenant_reserved("acme")
            return plain, plain_reserved, reserved, upfront

        plain, plain_reserved, reserved, upfront = asyncio.run(run())
        assert plain.status == 201 and reserved.status == 201
        # Reserve mode books the plan's upfront cost against the tenant
        # at admission; plain mode books nothing until publish time.
        assert plain_reserved == 0.0
        assert upfront > 0.0


class TestPlanGating:
    BUDGET = 0.05

    def test_infeasible_plan_answers_402_with_counter_offer(self):
        async def run():
            app = _make_app(budget=self.BUDGET)
            client = InProcessClient(app, token="acme-token")
            refused = await client.post("/v1/queries", _query_body("alpha"))
            explained = await client.post("/v1/explain", _query_body("alpha"))
            metrics = await client.get("/v1/metrics")
            return refused, explained, metrics

        refused, explained, metrics = asyncio.run(run())
        assert refused.status == 402
        payload = refused.json()
        assert payload["error"] == "plan-infeasible"
        decision = payload["decision"]
        assert decision["admitted"] is False
        counter = decision["counter_offer"]
        assert counter is not None
        # Parity: the 402's plan and decision are exactly what explain
        # (and hence `cdas-repro explain`) serves for the same request.
        assert explained.status == 200
        assert canonical_json(payload["plan"]) == canonical_json(
            explained.json()["plan"]
        )
        assert canonical_json(decision) == canonical_json(
            explained.json()["decision"]
        )
        # Negotiated refusal costs nothing: zero market spend.
        ledger = metrics.json()["services"]["svc"]["ledger"]
        assert ledger["total_cost"] == 0.0

    def test_counter_offer_matches_direct_preadmit(self):
        async def run():
            app = _make_app(budget=self.BUDGET)
            client = InProcessClient(app, token="acme-token")
            refused = await client.post("/v1/queries", _query_body("alpha"))
            return refused.json()

        payload = asyncio.run(run())
        service = _cdas(52).service(max_in_flight=2)
        service.register_tenant("acme", priority=2.0, budget_cap=self.BUDGET)
        plan = service.plan(
            "twitter-sentiment",
            movie_query("alpha", 0.9),
            tenant="acme",
            **_tsa_inputs(),
        )
        decision = service.preadmit(plan)
        assert decision.admitted is False
        assert canonical_json(payload["decision"]) == canonical_json(
            decision.to_dict()
        )


class TestErrors:
    def test_unknown_and_foreign_query_ids_answer_404(self):
        async def run():
            app = _make_app()
            client = InProcessClient(app)
            submitted = await client.post(
                "/v1/queries", _query_body("alpha"), token="acme-token"
            )
            query_id = submitted.json()["id"]
            foreign = await client.get(
                f"/v1/queries/{query_id}", token="globex-token"
            )
            unknown = await client.get(
                "/v1/queries/svc-99", token="acme-token"
            )
            unparsable = await client.get(
                "/v1/queries/nonsense", token="acme-token"
            )
            return foreign, unknown, unparsable

        for response in asyncio.run(run()):
            assert response.status == 404
            assert response.json()["error"] == "unknown-query"

    def test_method_path_and_body_errors(self):
        async def run():
            app = _make_app()
            client = InProcessClient(app, token="acme-token")
            method = await client.delete("/v1/healthz")
            path = await client.get("/v2/anything")
            empty = await client.request("POST", "/v1/queries")
            bad_job = await client.post(
                "/v1/queries", dict(_query_body("alpha"), job="no-such-job")
            )
            bad_field = await client.post(
                "/v1/queries", dict(_query_body("alpha"), surprise=1)
            )
            bad_preset = await client.post(
                "/v1/queries",
                dict(_query_body("alpha"), inputs={"$preset": "nope"}),
            )
            return method, path, empty, bad_job, bad_field, bad_preset

        method, path, empty, bad_job, bad_field, bad_preset = asyncio.run(run())
        assert method.status == 405
        assert path.status == 404
        assert empty.status == 400
        assert bad_job.status == 400
        assert bad_field.status == 400
        assert bad_preset.status == 400


class TestSse:
    def test_stream_frames_progress_to_end(self):
        async def run():
            app = _make_app()
            client = InProcessClient(app, token="acme-token")
            submitted = await client.post("/v1/queries", _query_body("alpha"))
            return await _run_to_end(client, submitted.json()["id"])

        frames = asyncio.run(run())
        assert frames[0][0] == "progress"
        progress_frames = [data for event, data in frames if event == "progress"]
        assert len(progress_frames) > 1
        for earlier, later in zip(progress_frames, progress_frames[1:]):
            assert earlier["items_answered"] <= later["items_answered"]
            assert earlier["spend"] <= later["spend"]
        end = frames[-1][1]
        assert end["progress"]["state"] == "done"

    def test_heartbeats_fill_dormant_spells(self):
        async def run():
            app = _make_app(seed=54, slow=DELAY, heartbeat=DELAY / 10)
            client = InProcessClient(app, token="acme-token")
            submitted = await client.post("/v1/queries", _query_body("alpha"))
            return await _run_to_end(client, submitted.json()["id"])

        frames = asyncio.run(run())
        heartbeats = [frame for frame in frames if frame == (None, None)]
        assert heartbeats, "no heartbeat comments during a slow-backend run"

    def test_disconnected_consumer_does_not_stall_the_query(self):
        async def run():
            app = _make_app()
            client = InProcessClient(app, token="acme-token")
            submitted = await client.post("/v1/queries", _query_body("alpha"))
            query_id = submitted.json()["id"]
            # Walk away after two SSE chunks; the app must notice the
            # http.disconnect and return instead of streaming to the end.
            partial = await client.get(
                f"/v1/queries/{query_id}/events", disconnect_after=2
            )
            await app.mux["svc"].wait_idle()
            final = await client.get(f"/v1/queries/{query_id}")
            metrics = await client.get("/v1/metrics")
            return partial, final, metrics

        partial, final, metrics = asyncio.run(run())
        assert partial.status == 200
        assert b"event: end" not in partial.body
        # The abandoned stream cost nothing: the query still finished.
        assert final.json()["progress"]["state"] == "done"
        assert metrics.json()["gateway"]["sse_streams"] == 1

    def test_sse_on_terminal_query_ends_immediately(self):
        async def run():
            app = _make_app()
            client = InProcessClient(app, token="acme-token")
            submitted = await client.post("/v1/queries", _query_body("alpha"))
            query_id = submitted.json()["id"]
            await _run_to_end(client, query_id)
            return await _run_to_end(client, query_id)

        frames = asyncio.run(run())
        assert [event for event, _ in frames] == ["progress", "end"]


class TestDurableGateway:
    def test_submit_is_journaled_before_the_201(self, journal_path):
        async def run():
            app = _make_app(journal=journal_path)
            client = InProcessClient(app, token="acme-token")
            submitted = await client.post("/v1/queries", _query_body("alpha"))
            assert submitted.status == 201
            query_id = submitted.json()["id"]
            # The acknowledgement barrier: the submit record is on disk
            # by the time the client sees the id.
            assert journal_path.exists()
            text = journal_path.read_text()
            assert '"submit"' in text
            await _run_to_end(client, query_id)
            metrics = await client.get("/v1/metrics")
            journal = metrics.json()["services"]["svc"]["journal"]
            assert journal is not None
            assert journal["records"] > 0
            app.mux["svc"].service.close()
            return query_id

        query_id = asyncio.run(run())

        async def resume():
            cdas = _cdas(52)
            app = cdas.gateway(
                TOKENS,
                name="svc",
                presets={"demo-tsa": _tsa_inputs()},
                max_in_flight=2,
                journal=journal_path,
                resume=True,
            )
            client = InProcessClient(app, token="acme-token")
            response = await client.get(f"/v1/queries/{query_id}")
            app.mux["svc"].service.close()
            return response

        response = asyncio.run(resume())
        assert response.status == 200
        assert response.json()["progress"]["state"] == "done"


class TestMetrics:
    def test_metrics_counts_requests_and_drains(self):
        async def run():
            app = _make_app()
            client = InProcessClient(app, token="acme-token")
            submitted = await client.post("/v1/queries", _query_body("alpha"))
            await _run_to_end(client, submitted.json()["id"])
            return await client.get("/v1/metrics")

        metrics = asyncio.run(run())
        payload = metrics.json()
        assert payload["gateway"]["submits"] == 1
        assert payload["gateway"]["requests"] >= 3
        service = payload["services"]["svc"]
        assert service["queries"] == {"done": 1}
        assert service["steps_taken"] > 0
        assert service["drains"] >= 1
        assert service["journal"] is None
        assert service["ledger"]["total_cost"] > 0
