"""Real-socket smoke tests: `repro serve --http` end to end.

These spawn the CLI in a subprocess, talk to it with :mod:`urllib` over
a real TCP socket, and assert two things the in-process suite cannot:

* the network path changes nothing — a mixed TSA + IT multi-tenant run
  driven over HTTP is bit-identical (canonical JSON) to the same
  submissions on an in-process async service;
* the durability composition holds — ``kill -9`` the serving process,
  restart it on the same journal, and every acknowledged query id
  resolves again with the same spend (no double-charge).

Determinism discipline: over a socket the driver's steps interleave
with requests at the kernel's whim, so each query is driven to its
terminal state (by reading its SSE stream to the ``end`` frame) before
the next is submitted — every submission lands on a drained service,
which pins the step sequence.  The cancelled query is excluded from the
fingerprint (how much work a cancel catches mid-flight is timing), and
asserted on its frozen-view contract instead.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

SEED = 2012
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")


def _query(movie: str) -> dict:
    """The demo ``movie_query(movie, 0.9)`` as a request body fragment."""
    return {
        "keywords": [movie],
        "required_accuracy": 0.9,
        "domain": ["positive", "neutral", "negative"],
        "window": 24,
        "subject": movie,
    }


#: The CLI demo submissions, as HTTP bodies: (token, body) — the same
#: mixed TSA + IT workload `repro serve` drives, via the demo presets.
SUBMISSIONS = [
    ("acme-token", {
        "job": "twitter-sentiment",
        "query": _query("rio"),
        "inputs": {"$preset": "demo-tsa"},
    }),
    ("globex-token", {
        "job": "twitter-sentiment",
        "query": _query("solaris"),
        "inputs": {"$preset": "demo-tsa"},
    }),
    ("globex-token", {
        "job": "image-tagging",
        "query": _query("images"),
        "inputs": {"$preset": "demo-it"},
    }),
]


class _Server:
    """One `repro serve --http` subprocess bound to an ephemeral port."""

    def __init__(self, journal: str | None = None) -> None:
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--http", "127.0.0.1:0", "--seed", str(SEED),
        ]
        if journal is not None:
            argv += ["--journal", journal]
        env = dict(os.environ, PYTHONUNBUFFERED="1")
        env["PYTHONPATH"] = _SRC + os.pathsep * bool(env.get("PYTHONPATH")) + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            argv, env=env, cwd=_REPO_ROOT, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        self.url = None
        self.banner: list[str] = []
        deadline = time.monotonic() + 180
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    "server exited before binding:\n" + "".join(self.banner)
                )
            self.banner.append(line)
            match = re.search(r"gateway listening on (http://\S+)", line)
            if match:
                self.url = match.group(1)
                return
        raise RuntimeError("server never printed its listening line")

    def request(self, path, method="GET", body=None, token="acme-token",
                timeout=120):
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.url + path, data=data, method=method
        )
        request.add_header("Authorization", f"Bearer {token}")
        if data is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def stream_to_end(self, path, token="acme-token", timeout=300) -> str:
        """Read an SSE stream until the server closes it."""
        request = urllib.request.Request(self.url + path)
        request.add_header("Authorization", f"Bearer {token}")
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.read().decode("utf-8")

    def run_to_terminal(self, query_id: str, token: str) -> dict:
        """Drive one query terminal (SSE to `end`), return its final poll."""
        sse = self.stream_to_end(f"/v1/queries/{query_id}/events", token=token)
        assert "event: end" in sse, sse[:400]
        status, payload = self.request(f"/v1/queries/{query_id}", token=token)
        assert status == 200
        assert payload["progress"]["state"] in ("done", "failed", "cancelled")
        return payload

    def kill9(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


@pytest.fixture()
def server_factory():
    servers: list[_Server] = []

    def start(journal: str | None = None) -> _Server:
        server = _Server(journal=journal)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.stop()


def _in_process_outcomes() -> list[dict]:
    """The same submissions on a plain in-process async service."""
    from repro.cli import _serve_workload
    from repro.scenarios import result_summary
    from repro.tsa.app import movie_query

    cdas, tweets, gold, images, gold_images = _serve_workload(SEED)
    inputs_by_preset = {
        "demo-tsa": dict(
            tweets=tweets, gold_tweets=gold, worker_count=5, batch_size=6
        ),
        "demo-it": dict(
            images=images, gold_images=gold_images, worker_count=5
        ),
    }

    async def run():
        async with cdas.async_service(max_in_flight=4, name="svc") as service:
            service.register_tenant("acme", priority=2.0)
            service.register_tenant("globex", priority=1.0)
            outcomes = []
            for token, body in SUBMISSIONS:
                handle = service.submit(
                    body["job"],
                    movie_query(body["query"]["subject"], 0.9),
                    tenant=token.removesuffix("-token"),
                    budget=None,
                    priority=None,
                    reserve=True,
                    **inputs_by_preset[body["inputs"]["$preset"]],
                )
                result = await handle.result()
                outcomes.append(
                    {
                        "progress": handle.progress().to_dict(),
                        "result": result_summary(result),
                    }
                )
            return outcomes

    return asyncio.run(run())


class TestHttpEndToEnd:
    def test_mixed_tenant_run_matches_in_process_service(self, server_factory):
        from repro.scenarios import canonical_json

        server = server_factory()
        status, health = server.request("/v1/healthz")
        assert status == 200 and health["status"] == "ok"

        outcomes = []
        for token, body in SUBMISSIONS:
            status, payload = server.request(
                "/v1/queries", "POST", body, token=token
            )
            assert status == 201, payload
            final = server.run_to_terminal(payload["id"], token)
            assert final["progress"]["state"] == "done"
            outcomes.append(
                {"progress": final["progress"], "result": final["result"]}
            )

        # The cancel contract (excluded from the fingerprint: how much
        # a mid-flight cancel catches is timing over a real socket).
        token, body = SUBMISSIONS[0]
        status, payload = server.request(
            "/v1/queries", "POST", body, token=token
        )
        assert status == 201
        cancel_id = payload["id"]
        status, cancelled = server.request(
            f"/v1/queries/{cancel_id}", "DELETE", token=token
        )
        assert status == 200
        # Over a real socket the driver races the DELETE: usually the
        # cancel catches the query mid-flight ("cancelled"), but on a
        # fast run it may already have finished ("done").  Both are
        # charge-final terminal states; the frozen-view contract below
        # is what must hold regardless of who won.
        assert cancelled["progress"]["state"] in ("cancelled", "done")
        time.sleep(0.2)  # room for (incorrect) further charging
        _, first = server.request(f"/v1/queries/{cancel_id}", token=token)
        _, second = server.request(f"/v1/queries/{cancel_id}", token=token)
        assert first == second, "cancelled view is not frozen"
        assert first["progress"] == cancelled["progress"]

        # The network front door changes nothing: byte-identical
        # canonical outcomes versus the in-process service.
        assert canonical_json(outcomes) == canonical_json(
            _in_process_outcomes()
        )


class TestCrashRecovery:
    def test_kill9_recover_resolves_same_ids_without_double_charge(
        self, server_factory, tmp_path
    ):
        journal = str(tmp_path / "gateway.journal.jsonl")
        server = server_factory(journal=journal)

        token, body = SUBMISSIONS[0]
        status, payload = server.request(
            "/v1/queries", "POST", body, token=token
        )
        assert status == 201
        query_id = payload["id"]
        final = server.run_to_terminal(query_id, token)
        assert final["progress"]["state"] == "done"
        spend = final["progress"]["spend"]
        status, metrics = server.request("/v1/metrics")
        total_cost = metrics["services"]["svc"]["ledger"]["total_cost"]

        server.kill9()

        revived = server_factory(journal=journal)
        assert any("recovered 1 queries" in line for line in revived.banner), (
            revived.banner
        )
        status, repolled = revived.request(
            f"/v1/queries/{query_id}", token=token
        )
        assert status == 200
        assert repolled["progress"]["state"] == "done"
        assert repolled["progress"]["spend"] == spend
        assert repolled["result"] == final["result"]
        status, metrics = revived.request("/v1/metrics")
        ledger = metrics["services"]["svc"]["ledger"]
        # Recovery re-derives the run instead of re-buying it: the
        # ledger totals match the pre-crash service exactly.
        assert ledger["total_cost"] == total_cost

        # The revived gateway is live: the next submission gets the
        # next sequence number, not a recycled id.
        status, payload = revived.request(
            "/v1/queries", "POST", SUBMISSIONS[1][1], token="globex-token"
        )
        assert status == 201
        assert payload["id"] != query_id
        final = revived.run_to_terminal(payload["id"], "globex-token")
        assert final["progress"]["state"] == "done"
