"""The golden-trace determinism gate.

Three recorded market runs are checked in under ``tests/data/traces/``;
replaying each through the *current* engine must reproduce the recording
run's query results and ledger spend bit for bit, and the interaction
fingerprint must match the hex digests pinned below (which equal the
``end`` records inside the files — pinning them here too means neither
the code nor the trace file can drift alone).

CI runs this module on every supported Python version (the
``trace-replay`` job): any fingerprint or outcome drift — a changed
verdict, a re-ordered submission, a different charge — fails the gate.
Regenerate the traces deliberately with::

    python -m repro record --scenario mixed-service --seed 2012 \
        --out tests/data/traces/mixed_service.jsonl
    python -m repro record --scenario cancel-mid-flight --seed 2012 \
        --out tests/data/traces/cancel_mid_flight.jsonl
    python -m repro record --scenario preadmission --seed 2012 \
        --out tests/data/traces/preadmission.jsonl

and update the pinned fingerprints in the same commit.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.amt.trace import load_trace
from repro.scenarios import canonical_json, replay_scenario

TRACES = Path(__file__).parent / "data" / "traces"

#: file name → (scenario, recorded interaction-stream fingerprint).
GOLDEN = {
    "mixed_service.jsonl": (
        "mixed-service",
        "ac845781aa2224bae9f89ec91492a80607c8540bfbae47ca39a57291a50b6977",
    ),
    "cancel_mid_flight.jsonl": (
        "cancel-mid-flight",
        "d173ef7ec9d7d5f8c0bffeb2af858dd7b7c3f26e5f3af3e8e2afaaaad2b37d8e",
    ),
    "preadmission.jsonl": (
        "preadmission",
        "62202bf1c5bb598622eae5358062d41030dfab64ad9438c05dc182beed1d9f4b",
    ),
}


@pytest.mark.parametrize("filename", sorted(GOLDEN))
def test_golden_trace_file_is_intact(filename):
    """The checked-in file loads, self-validates, and matches its pin."""
    scenario, pinned_fingerprint = GOLDEN[filename]
    trace = load_trace(TRACES / filename)
    assert trace.meta["scenario"] == scenario
    assert trace.fingerprint == pinned_fingerprint
    assert trace.expect is not None, "golden traces must pin their outcome"


@pytest.mark.parametrize("filename", sorted(GOLDEN))
def test_golden_trace_replays_bit_for_bit(filename):
    """The determinism gate: replay reproduces results and spend exactly.

    ``replay_scenario`` itself raises :class:`TraceDivergence` on any
    deviation (extra publish, reordered submission, missing cancel) and
    on any outcome drift; the assertions below re-state the acceptance
    criterion explicitly.
    """
    scenario, pinned_fingerprint = GOLDEN[filename]
    report = replay_scenario(TRACES / filename)
    assert report.scenario == scenario
    assert report.fingerprint == pinned_fingerprint
    trace = load_trace(TRACES / filename)
    # Bit-for-bit: the replay outcome serialises identically to the
    # outcome pinned by the recording run (verdicts, confidences,
    # progress counters, per-tenant and ledger spend).
    assert canonical_json(report.outcome) == canonical_json(trace.expect)


def test_golden_cancel_trace_exercises_forfeiture():
    """The cancel-mid-flight golden really forfeits assignments."""
    report = replay_scenario(TRACES / "cancel_mid_flight.jsonl")
    ledger = report.outcome["ledger"]
    assert ledger["cancelled_assignments"] > 0
    assert ledger["avoided_cost"] > 0
    doomed = report.outcome["handles"][0]
    assert doomed["state"] == "cancelled"
    assert doomed["spend"] > 0  # charge-final: collected work stays paid


def test_golden_preadmission_trace_gates_at_plan_time():
    """The preadmission golden proves plan-gated runs replay bit for bit:
    the refused query spent nothing, scheduled nothing, left no market
    record — and the refusal's counter-offer numbers are pinned."""
    report = replay_scenario(TRACES / "preadmission.jsonl")
    refusal = report.outcome["refusal"]
    assert refusal is not None, "the infeasible query must have been refused"
    assert refusal["spend_during_refusal"] == 0.0
    assert refusal["events_during_refusal"] == 0
    assert refusal["projected_cost"] > refusal["tenant_remaining"]
    offer = refusal["counter_offer"]
    assert 0 < offer["workers_per_item"]
    assert offer["achievable_accuracy"] is not None
    # The admitted query ran to completion under its reservation.
    (handle,) = report.outcome["handles"]
    assert handle["state"] == "done"
    assert handle["spend"] <= 0.40  # inside the tenant cap


def test_golden_mixed_trace_covers_both_jobs():
    """The mixed golden spans TSA + IT queries and two tenants."""
    report = replay_scenario(TRACES / "mixed_service.jsonl")
    jobs = {h["job"] for h in report.outcome["handles"]}
    tenants = {h["tenant"] for h in report.outcome["handles"]}
    assert jobs == {"twitter-sentiment", "image-tagging"}
    assert tenants == {"acme", "globex"}
    assert all(h["state"] == "done" for h in report.outcome["handles"])
