"""Cross-module integration tests: the full CDAS loop under one roof."""

from __future__ import annotations

import pytest

from repro.amt.market import SimulatedMarket
from repro.amt.pool import PoolConfig, WorkerPool
from repro.engine.engine import CrowdsourcingEngine, EngineConfig
from repro.engine.executor import ProgramExecutor
from repro.engine.jobs import JobManager
from repro.engine.privacy import PrivacyManager
from repro.tsa.app import TSAJob, build_tsa_spec, movie_query
from repro.tsa.stream import TweetStream
from repro.tsa.tweets import generate_tweets, tweet_to_question


def _world(seed: int, termination: str | None = None):
    pool = WorkerPool.from_config(PoolConfig(size=300), seed=seed)
    market = SimulatedMarket(pool, seed=seed)
    config = EngineConfig(termination=termination)
    return pool, market, CrowdsourcingEngine(market, seed=seed, config=config)


class TestQualityGuarantee:
    def test_predicted_workers_meet_required_accuracy(self):
        """Theorem 4 end to end: calibrate, predict, run, and verify the
        realised accuracy clears the requirement (with sampling slack)."""
        _, market, engine = _world(seed=101)
        gold = [
            tweet_to_question(t)
            for t in generate_tweets(["Inception"], per_movie=60, seed=102)
        ]
        engine.calibrate(gold[:20], workers_per_hit=25, hits=2)
        tweets = generate_tweets(["Thor", "Rio"], per_movie=40, seed=103)
        questions = [tweet_to_question(t) for t in tweets]
        required = 0.85
        result = engine.run_batch(questions, required, gold_pool=gold[20:])
        assert result.accuracy >= required - 0.05

    def test_more_required_accuracy_costs_more(self):
        _, market, engine = _world(seed=104)
        gold = [
            tweet_to_question(t)
            for t in generate_tweets(["Inception"], per_movie=30, seed=105)
        ]
        engine.calibrate(gold[:20], workers_per_hit=25, hits=2)
        n_low = engine.predict_workers(0.7)
        n_high = engine.predict_workers(0.95)
        assert n_high > n_low


class TestEarlyTerminationEconomics:
    def test_termination_reduces_cost_not_accuracy(self):
        gold_tweets = generate_tweets(["Inception"], per_movie=30, seed=202)
        tweets = generate_tweets(["Thor"], per_movie=25, seed=203)

        def run(termination):
            _, market, engine = _world(seed=201, termination=termination)
            engine.calibrate(
                [tweet_to_question(t) for t in gold_tweets[:20]],
                workers_per_hit=25,
                hits=2,
            )
            job = TSAJob(engine, batch_size=1)  # per-tweet HITs terminate best
            result = job.run(
                movie_query("Thor", 0.9),
                gold_tweets=gold_tweets[20:],
                tweets=tweets,
                worker_count=15,
            )
            return result, market

        full, full_market = run(None)
        early, early_market = run("expmax")
        assert early.cost < full.cost
        assert early_market.ledger.cancelled_assignments > 0
        assert early.accuracy >= full.accuracy - 0.1

    def test_ledger_consistency(self):
        _, market, engine = _world(seed=204, termination="expmax")
        gold = generate_tweets(["Inception"], per_movie=20, seed=205)
        tweets = generate_tweets(["Rio"], per_movie=10, seed=206)
        job = TSAJob(engine, batch_size=1)
        job.run(
            movie_query("Rio", 0.85),
            gold_tweets=gold,
            tweets=tweets,
            worker_count=11,
        )
        ledger = market.ledger
        # Charged + cancelled must cover every published assignment.
        published = sum(
            market.handle(f"hit-{i:05d}").hit.assignments
            for i in range(market.published_hits)
        )
        assert ledger.charged_assignments + ledger.cancelled_assignments == published
        assert ledger.total_cost == pytest.approx(
            ledger.schedule.per_assignment * ledger.charged_assignments
        )


class TestFullPipelineWithAllComponents:
    def test_job_manager_privacy_stream_report(self):
        pool = WorkerPool.from_config(PoolConfig(size=300), seed=301)
        market = SimulatedMarket(pool, seed=301)
        privacy = PrivacyManager(min_approval_rate=0.0)
        engine = CrowdsourcingEngine(market, seed=301, privacy=privacy)

        manager = JobManager()
        manager.register(build_tsa_spec(text_filter=privacy.sanitize_text))
        query = movie_query("Thor", 0.85, window=24)
        plan = manager.plan("twitter-sentiment", query)
        assert "twitter-sentiment" in plan.describe()

        gold = generate_tweets(["Inception"], per_movie=25, seed=302)
        engine.calibrate(
            [tweet_to_question(t) for t in gold[:15]], workers_per_hit=20, hits=2
        )
        corpus = generate_tweets(["Thor"], per_movie=30, seed=303)
        stream = TweetStream.from_corpus(corpus)
        executor = ProgramExecutor(text_of=lambda t: t.text)
        candidates = list(executor.filter_stream(stream.window(query), query))
        assert candidates

        job = TSAJob(engine, stream=stream, batch_size=15)
        result = job.run(query, gold_tweets=gold[15:])
        assert result.accuracy > 0.7
        report_text = result.report.render()
        assert "Thor" in report_text

    def test_determinism_of_full_pipeline(self):
        def run_once():
            pool = WorkerPool.from_config(PoolConfig(size=200), seed=401)
            market = SimulatedMarket(pool, seed=401)
            engine = CrowdsourcingEngine(market, seed=401)
            gold = generate_tweets(["Inception"], per_movie=20, seed=402)
            tweets = generate_tweets(["Rio"], per_movie=15, seed=403)
            job = TSAJob(engine, batch_size=15)
            return job.run(
                movie_query("Rio", 0.8),
                gold_tweets=gold,
                tweets=tweets,
                worker_count=7,
            )

        a, b = run_once(), run_once()
        assert a.accuracy == b.accuracy
        assert a.cost == b.cost
        assert [r.verdict.answer for r in a.records] == [
            r.verdict.answer for r in b.records
        ]
