"""Tests for the IT application: corpus and end-to-end job."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amt.market import SimulatedMarket
from repro.engine.engine import CrowdsourcingEngine
from repro.it.app import ITJob, build_it_spec
from repro.it.images import (
    IMAGE_TAG_DIFFICULTY,
    NOISE_TAGS,
    SUBJECT_TAGS,
    SUBJECTS,
    ImageCorpusConfig,
    generate_images,
    image_tag_questions,
    tag_prototypes,
    tag_vocabulary,
)


class TestImageCorpus:
    def test_counts(self):
        images = generate_images(per_subject=4, seed=1)
        assert len(images) == 4 * len(SUBJECTS)

    def test_subject_tag_always_true(self):
        for image in generate_images(per_subject=3, seed=2):
            assert image.subject in image.true_tags

    def test_true_tags_from_subject_pool(self):
        for image in generate_images(per_subject=3, seed=3):
            assert set(image.true_tags) <= set(SUBJECT_TAGS[image.subject])

    def test_candidates_contain_truth_and_noise(self):
        cfg = ImageCorpusConfig(noise_tags_per_image=3)
        for image in generate_images(per_subject=3, seed=4, config=cfg):
            assert set(image.true_tags) <= set(image.candidate_tags)
            noise = set(image.candidate_tags) - set(image.true_tags)
            assert len(noise) == 3
            assert noise <= set(NOISE_TAGS)

    def test_deterministic(self):
        a = generate_images(per_subject=3, seed=5)
        b = generate_images(per_subject=3, seed=5)
        assert [i.candidate_tags for i in a] == [i.candidate_tags for i in b]

    def test_features_near_prototype_mean(self):
        cfg = ImageCorpusConfig(feature_noise=0.0)
        protos = tag_prototypes(5, cfg.feature_dim)
        image = generate_images(per_subject=1, seed=5, config=cfg)[0]
        expected = np.mean([protos[t] for t in image.true_tags], axis=0)
        assert np.allclose(image.feature_array(), expected)

    def test_vocabulary_unique_and_covers_all(self):
        vocab = tag_vocabulary()
        assert len(vocab) == len(set(vocab))
        for subject in SUBJECTS:
            assert set(SUBJECT_TAGS[subject]) <= set(vocab)
        assert set(NOISE_TAGS) <= set(vocab)

    def test_unknown_subject_rejected(self):
        with pytest.raises(ValueError, match="unknown subject"):
            generate_images(per_subject=1, seed=1, subjects=("volcano",))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ImageCorpusConfig(true_tags_per_image=0)
        with pytest.raises(ValueError):
            ImageCorpusConfig(feature_noise=-1.0)


class TestImageTagQuestions:
    def test_one_question_per_candidate(self):
        image = generate_images(per_subject=1, seed=6)[0]
        questions = image_tag_questions(image)
        assert len(questions) == len(image.candidate_tags)
        assert all(q.options == ("yes", "no") for q in questions)
        assert all(q.difficulty == IMAGE_TAG_DIFFICULTY for q in questions)

    def test_truth_matches_membership(self):
        image = generate_images(per_subject=1, seed=7)[0]
        for q in image_tag_questions(image):
            tag = q.question_id.split("#", 1)[1]
            expected = "yes" if tag in image.true_tags else "no"
            assert q.truth == expected


class TestITJobEndToEnd:
    def test_full_run(self, small_pool):
        market = SimulatedMarket(small_pool, seed=60)
        engine = CrowdsourcingEngine(market, seed=60)
        images = generate_images(per_subject=2, seed=61)[:6]
        gold = generate_images(per_subject=1, seed=62)
        job = ITJob(engine, images_per_hit=3)
        result = job.run(images, required_accuracy=0.85, gold_images=gold, worker_count=5)
        assert result.decision_accuracy > 0.8
        assert 0.0 <= result.tag_recall() <= 1.0
        assert result.cost > 0

    def test_accepted_tags_subset_of_candidates(self, small_pool):
        market = SimulatedMarket(small_pool, seed=63)
        engine = CrowdsourcingEngine(market, seed=63)
        images = generate_images(per_subject=1, seed=64)[:2]
        gold = generate_images(per_subject=1, seed=66)
        job = ITJob(engine, images_per_hit=2)
        result = job.run(
            images, required_accuracy=0.85, gold_images=gold, worker_count=3
        )
        for image in images:
            assert set(result.accepted_tags(image.image_id)) <= set(
                image.candidate_tags
            )

    def test_no_images_rejected(self, small_pool):
        market = SimulatedMarket(small_pool, seed=65)
        engine = CrowdsourcingEngine(market, seed=65)
        with pytest.raises(ValueError):
            ITJob(engine).run([], required_accuracy=0.9)

    def test_spec_shape(self):
        spec = build_it_spec()
        assert spec.name == "image-tagging"
