"""Tests for human-assisted image search (§2.1's pipeline)."""

from __future__ import annotations

import pytest

from repro.amt.market import SimulatedMarket
from repro.engine.engine import CrowdsourcingEngine
from repro.it.app import ITJob
from repro.it.images import generate_images
from repro.it.search import (
    TagIndex,
    build_index_from_crowd,
    crowd_search_pipeline,
    evaluate_search,
)

SEED = 2012


class TestTagIndex:
    def test_ranked_by_confidence(self):
        index = TagIndex()
        index.add("sun", "img-b", 0.7)
        index.add("sun", "img-a", 0.9)
        index.add("sun", "img-c", 0.8)
        assert index.search("sun") == ["img-a", "img-c", "img-b"]

    def test_limit(self):
        index = TagIndex()
        for i, conf in enumerate((0.9, 0.8, 0.7)):
            index.add("sky", f"img-{i}", conf)
        assert index.search("sky", limit=2) == ["img-0", "img-1"]

    def test_unknown_tag_empty(self):
        assert TagIndex().search("nothing") == []

    def test_duplicate_posting_rejected(self):
        index = TagIndex()
        index.add("sun", "img", 0.9)
        with pytest.raises(ValueError, match="duplicate posting"):
            index.add("sun", "img", 0.8)

    def test_confidence_validated(self):
        with pytest.raises(ValueError):
            TagIndex().add("sun", "img", 1.5)

    def test_len_and_tags(self):
        index = TagIndex()
        index.add("a", "i1", 0.5)
        index.add("b", "i1", 0.5)
        index.add("b", "i2", 0.5)
        assert len(index) == 3
        assert index.tags() == ("a", "b")


class TestEvaluateSearch:
    def test_perfect_index(self):
        images = generate_images(per_subject=2, seed=SEED)[:4]
        index = TagIndex()
        for img in images:
            for tag in img.true_tags:
                index.add(tag, img.image_id, 1.0)
        evaluation = evaluate_search(index, images)
        assert evaluation.precision == 1.0
        assert evaluation.recall == 1.0
        assert evaluation.f1 == 1.0

    def test_empty_index_zero_recall(self):
        images = generate_images(per_subject=1, seed=SEED)[:2]
        evaluation = evaluate_search(TagIndex(), images)
        assert evaluation.recall == 0.0
        # Nothing retrieved → vacuous precision 1.0, f1 dominated by recall.
        assert evaluation.f1 == 0.0

    def test_wrong_postings_hurt_precision(self):
        images = generate_images(per_subject=1, seed=SEED)[:2]
        index = TagIndex()
        img = images[0]
        noise_tag = next(
            t for t in img.candidate_tags if t not in img.true_tags
        )
        index.add(noise_tag, img.image_id, 0.9)
        evaluation = evaluate_search(index, images, query_tags=[noise_tag])
        assert evaluation.precision == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="no corpus"):
            evaluate_search(TagIndex(), [])
        images = generate_images(per_subject=1, seed=SEED)[:1]
        with pytest.raises(ValueError, match="no query tags"):
            evaluate_search(TagIndex(), images, query_tags=[])


class TestEndToEndPipeline:
    def test_crowd_built_index_searches_well(self, small_pool):
        market = SimulatedMarket(small_pool, seed=71)
        engine = CrowdsourcingEngine(market, seed=71)
        images = generate_images(per_subject=2, seed=72)
        gold = generate_images(per_subject=1, seed=73)
        index, result, evaluation = crowd_search_pipeline(
            engine, images, gold, required_accuracy=0.9, worker_count=5
        )
        # Crowd decisions are ~95% right on easy tag questions, so search
        # quality over the ground truth should be high.
        assert evaluation.precision > 0.8
        assert evaluation.recall > 0.8
        assert len(index) > 0
        assert result.cost > 0

    def test_build_index_only_accepted_tags(self, small_pool):
        market = SimulatedMarket(small_pool, seed=74)
        engine = CrowdsourcingEngine(market, seed=74)
        images = generate_images(per_subject=1, seed=75)[:3]
        gold = generate_images(per_subject=1, seed=76)
        job = ITJob(engine, images_per_hit=3)
        index, result = build_index_from_crowd(
            job, images, 0.9, gold_images=gold, worker_count=3
        )
        accepted_pairs = {
            record.question.question_id
            for record in result.records
            if record.verdict.answer == "yes"
        }
        assert len(index) == len(accepted_pairs)
