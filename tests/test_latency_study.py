"""Tests for the waiting-time extension study."""

from __future__ import annotations

import pytest

from repro.experiments.latency_study import run_latency_study

SEED = 2012


class TestLatencyStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_latency_study(SEED, review_count=60, worker_count=11)

    def _by_mode(self, result):
        return {row["mode"]: row for row in result.rows}

    def test_all_modes_present(self, result):
        modes = {row["mode"] for row in result.rows}
        assert modes == {"wait-for-all", "minmax", "minexp", "expmax"}

    def test_every_strategy_faster_than_waiting(self, result):
        by_mode = self._by_mode(result)
        baseline = by_mode["wait-for-all"]["mean_seconds"]
        for mode in ("minmax", "minexp", "expmax"):
            assert by_mode[mode]["mean_seconds"] < baseline

    def test_tail_latency_reduced(self, result):
        by_mode = self._by_mode(result)
        baseline = by_mode["wait-for-all"]["p90_seconds"]
        for mode in ("minmax", "minexp", "expmax"):
            assert by_mode[mode]["p90_seconds"] < baseline

    def test_accuracy_essentially_kept(self, result):
        by_mode = self._by_mode(result)
        baseline = by_mode["wait-for-all"]["accuracy"]
        for mode in ("minmax", "minexp", "expmax"):
            assert by_mode[mode]["accuracy"] >= baseline - 0.05

    def test_wait_for_all_consumes_everything(self, result):
        assert self._by_mode(result)["wait-for-all"]["mean_answers"] == 11.0

    def test_validation(self):
        with pytest.raises(ValueError, match="≥ 3 workers"):
            run_latency_study(SEED, worker_count=2)
