"""The vectorised-simulation contract: fast paths change *nothing* but time.

Three layers of evidence, from micro to macro:

* property tests (hypothesis) — ``publish_many`` equals sequential
  ``publish_reference`` bit for bit (worker sets, answers, keywords,
  submit times, assignment order) across random seeds, pool behaviour
  mixes, latency models, difficulties and reason keywords, with the
  vectorised path actually taken (``fallback_batches == 0``);
* the scheduler's batched ``_fill`` — draining sources through
  ``publish_many`` yields the same results as a market that only offers
  scalar ``publish``;
* re-recording every golden scenario reproduces the pinned
  interaction-stream fingerprints — the engine-wide end-to-end pin that
  the memoized confidence math and incremental aggregation also sit
  behind.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amt.hit import HIT, Question
from repro.amt.latency import ExponentialLatency, FixedLatency, LognormalLatency
from repro.amt.market import SimulatedMarket
from repro.amt.pool import WorkerPool
from repro.amt.worker import WorkerProfile
from repro.core.confidence import answer_confidences, worker_confidence
from repro.core.domain import AnswerDomain
from repro.core.online import OnlineAggregator
from repro.core.types import WorkerAnswer
from repro.engine.engine import CrowdsourcingEngine
from repro.engine.scheduler import HITScheduler
from repro.util.rng import substream

OPTIONS = ("pos", "neu", "neg")

LATENCIES = (LognormalLatency, ExponentialLatency, lambda: FixedLatency(30.0))


def _pool(seed: int, spam_frac: float, collude_frac: float, size: int = 40) -> WorkerPool:
    rng = substream(seed, "pool")
    profiles = []
    for i in range(size):
        r = rng.random()
        if r < collude_frac:
            behaviour, clique = "colluder", int(rng.integers(3))
        elif r < collude_frac + spam_frac:
            behaviour, clique = "spammer", 0
        else:
            behaviour, clique = "reliable", 0
        profiles.append(
            WorkerProfile(
                worker_id=f"w{i:05d}",
                true_accuracy=float(0.55 + 0.4 * rng.random()),
                behaviour=behaviour,
                clique=clique,
                approval_rate=float(0.9 + 0.1 * rng.random()),
                skills=(("sentiment", float(rng.random() * 0.1 - 0.05)),),
            )
        )
    return WorkerPool(profiles)


def _hits(
    count: int,
    questions: int,
    with_reasons: bool,
    with_difficulty: bool,
) -> list[HIT]:
    hits = []
    for h in range(count):
        qs = tuple(
            Question(
                question_id=f"hit{h:03d}-q{q}",
                options=OPTIONS,
                truth=OPTIONS[q % 3],
                difficulty=(q % 5 - 2) * 0.2 if with_difficulty else 0.0,
                is_gold=(q % 4 == 3),
                topic="sentiment",
                reason_keywords=("because", "since") if with_reasons and q == 0 else (),
            )
            for q in range(questions)
        )
        hits.append(HIT(hit_id=f"hit-{h:05d}", questions=qs, assignments=7))
    return hits


def _handle_facts(handle):
    return (
        handle.hit.hit_id,
        tuple(w.worker_id for w in handle.workers),
        tuple(
            (a.worker_id, tuple(sorted(a.answers.items())),
             tuple(sorted(a.keywords.items())), a.submit_time)
            for a in handle._assignments
        ),
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    spam_frac=st.floats(min_value=0.0, max_value=0.35),
    collude_frac=st.floats(min_value=0.0, max_value=0.3),
    latency_idx=st.integers(min_value=0, max_value=len(LATENCIES) - 1),
    with_reasons=st.booleans(),
    with_difficulty=st.booleans(),
    n_questions=st.integers(min_value=2, max_value=8),
    n_hits=st.integers(min_value=2, max_value=6),
)
def test_publish_many_matches_reference_bitwise(
    seed, spam_frac, collude_frac, latency_idx, with_reasons, with_difficulty,
    n_questions, n_hits,
):
    pool = _pool(seed, spam_frac, collude_frac)
    hits = _hits(n_hits, n_questions, with_reasons, with_difficulty)
    latency = LATENCIES[latency_idx]
    reference = SimulatedMarket(pool, seed=seed, latency=latency())
    vectorised = SimulatedMarket(pool, seed=seed, latency=latency())
    expected = [reference.publish_reference(h) for h in hits]
    actual = vectorised.publish_many(hits)
    assert vectorised.fallback_batches == 0, "clean batch must not fall back"
    for ref, vec in zip(expected, actual):
        assert _handle_facts(ref) == _handle_facts(vec)


def test_publish_many_duplicate_id_falls_back_like_reference():
    pool = _pool(3, 0.1, 0.1)
    hits = _hits(3, 4, False, False)
    market = SimulatedMarket(pool, seed=3)
    market.publish_many(hits)
    clash = SimulatedMarket(pool, seed=3)
    with pytest.raises(ValueError, match="already published"):
        clash.publish_many(hits + [hits[0]])


class _SerialOnlyMarket:
    """Protocol shim hiding ``publish_many`` — forces the scalar path."""

    def __init__(self, inner: SimulatedMarket) -> None:
        self._inner = inner
        self.ledger = inner.ledger

    def publish(self, hit):
        return self._inner.publish(hit)

    def __getattr__(self, name):
        if name == "publish_many":
            raise AttributeError(name)
        return getattr(self._inner, name)


def _scheduled_results(market, seed: int, in_flight: int):
    engine = CrowdsourcingEngine(market, seed=seed)
    scheduler = HITScheduler(engine, max_in_flight=in_flight)
    gold = [
        Question(question_id=f"gold{i}", options=OPTIONS, truth=OPTIONS[i % 3])
        for i in range(6)
    ]
    for b in range(8):
        scheduler.submit(
            [
                Question(
                    question_id=f"b{b}:q{i}", options=OPTIONS, truth=OPTIONS[i % 3]
                )
                for i in range(5)
            ],
            0.9,
            gold_pool=gold,
            worker_count=7,
        )
    return scheduler.run()


@pytest.mark.parametrize("in_flight", [1, 4, 8])
def test_scheduler_batched_fill_matches_serial_publish(in_flight):
    seed = 2012
    pool = _pool(seed, 0.15, 0.15, size=60)
    batched = _scheduled_results(SimulatedMarket(pool, seed=seed), seed, in_flight)
    serial = _scheduled_results(
        _SerialOnlyMarket(SimulatedMarket(pool, seed=seed)), seed, in_flight
    )
    assert len(batched) == len(serial)
    for fast, slow in zip(batched, serial):
        assert fast.hit_id == slow.hit_id
        assert fast.assignments_collected == slow.assignments_collected
        assert fast.cost == slow.cost
        assert [
            (r.question.question_id, r.verdict.answer, r.verdict.confidence)
            for r in fast.records
        ] == [
            (r.question.question_id, r.verdict.answer, r.verdict.confidence)
            for r in slow.records
        ]


# -- memoized confidence math -------------------------------------------------


def _observation(count: int) -> list[WorkerAnswer]:
    return [
        WorkerAnswer(
            worker_id=f"w{i}",
            answer=OPTIONS[i % 3],
            accuracy=0.55 + (i % 7) * 0.05,
            keywords=(),
            timestamp=float(i),
        )
        for i in range(count)
    ]


def test_worker_confidence_cache_hits_are_bit_identical():
    worker_confidence.cache_clear()
    domain = AnswerDomain.closed(OPTIONS)
    observation = _observation(30)
    cold = answer_confidences(observation, domain)
    baseline = worker_confidence.cache_info()
    warm = answer_confidences(observation, domain)
    assert worker_confidence.cache_info().hits > baseline.hits
    assert list(warm) == list(cold)
    for label in cold:
        assert math.isclose(warm[label], cold[label], rel_tol=0.0, abs_tol=0.0)
    # The cached value equals Definition 2 evaluated from scratch.
    cached = worker_confidence(0.7, 3)
    assert cached == math.log(2) + math.log(0.7) - math.log(0.3)


@settings(max_examples=20, deadline=None)
@given(
    answers=st.lists(
        st.sampled_from(OPTIONS + ("novel-a", "novel-b")),
        min_size=1,
        max_size=12,
    ),
    accuracies=st.lists(
        st.floats(min_value=0.05, max_value=0.95), min_size=12, max_size=12
    ),
    closed=st.booleans(),
)
def test_incremental_aggregator_matches_rebuilt_weights(answers, accuracies, closed):
    """The running per-label sums equal a from-scratch Equation 4 rebuild
    after every arrival, including open-domain growth (which re-estimates
    the effective m and forces a rebuild)."""
    if closed:
        answers = [a if a in OPTIONS else OPTIONS[0] for a in answers]
        domain = AnswerDomain.closed(OPTIONS)
    else:
        domain = AnswerDomain.open_ended([answers[0]])
    aggregator = OnlineAggregator(domain, hired_workers=len(answers), mean_accuracy=0.7)
    seen: list[WorkerAnswer] = []
    for i, answer in enumerate(answers):
        wa = WorkerAnswer(
            worker_id=f"w{i}",
            answer=answer,
            accuracy=accuracies[i],
            keywords=(),
            timestamp=float(i),
        )
        point = aggregator.submit(wa)
        seen.append(wa)
        expected = answer_confidences(seen, aggregator.domain)
        assert list(point.confidences) == list(expected)
        for label, value in expected.items():
            assert point.confidences[label] == value


# -- golden re-pins ------------------------------------------------------------


def test_rerecorded_golden_scenarios_keep_pinned_fingerprints(tmp_path):
    """Recording the golden scenarios *today* — through the memoized
    confidence math, the incremental aggregators, the wake-heap pump and
    the batch-capable scheduler — must reproduce the pinned fingerprints.
    These pins must NOT change in a perf PR; a mismatch means an
    optimisation altered engine-visible behaviour."""
    from repro.scenarios import record_scenario
    from tests.test_golden_traces import GOLDEN, TRACES

    from repro.amt.trace import load_trace

    for filename, (scenario, pinned) in sorted(GOLDEN.items()):
        meta = load_trace(TRACES / filename).meta
        report = record_scenario(
            scenario, tmp_path / filename, seed=meta.get("seed", 0)
        )
        assert report.fingerprint == pinned, (
            f"{scenario}: re-recorded fingerprint drifted from the pin"
        )
