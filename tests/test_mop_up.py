"""Mop-up coverage for small behaviours not exercised elsewhere."""

from __future__ import annotations

import pytest

from repro.amt.market import SimulatedMarket
from repro.engine.engine import CrowdsourcingEngine
from repro.engine.privacy import PrivacyManager
from repro.engine.query import Query
from repro.system import CDAS
from repro.tsa.app import movie_query
from repro.tsa.stream import TweetStream
from repro.tsa.tweets import generate_tweets


class TestStreamStringTimestamps:
    def test_string_timestamp_window_starts_at_zero(self):
        tweets = generate_tweets(["Thor"], per_movie=20, seed=5)
        stream = TweetStream.from_corpus(tweets, unit_seconds=3600.0)
        numeric = Query(
            keywords=("Thor",), required_accuracy=0.9,
            domain=("a", "b"), timestamp=0.0, window=24,
        )
        stringy = Query(
            keywords=("Thor",), required_accuracy=0.9,
            domain=("a", "b"), timestamp="2011-10-01", window=24,
        )
        assert [t.tweet_id for t in stream.window(stringy)] == [
            t.tweet_id for t in stream.window(numeric)
        ]


class TestCDASWithPrivacy:
    def test_facade_threads_privacy_manager(self, small_pool):
        market = SimulatedMarket(small_pool, seed=96)
        privacy = PrivacyManager(
            blocked_workers=frozenset(p.worker_id for p in small_pool.profiles)
        )
        system = CDAS.with_default_jobs(market, seed=96, privacy=privacy)
        gold = generate_tweets(["Inception"], per_movie=20, seed=97)
        tweets = generate_tweets(["Rio"], per_movie=5, seed=98)
        result = system.submit(
            "twitter-sentiment",
            movie_query("Rio", 0.85),
            gold_tweets=gold,
            tweets=tweets,
            worker_count=3,
            batch_size=5,
        )
        # Everyone blocked → every record abstains.
        assert all(r.verdict.answer is None for r in result.records)


class TestEngineHitIds:
    def test_hit_ids_unique_across_calls(self, small_pool):
        market = SimulatedMarket(small_pool, seed=99)
        engine = CrowdsourcingEngine(market, seed=99)
        from repro.amt.hit import Question

        q = [Question(question_id="q", options=("a", "b"), truth="a")]
        g = [Question(question_id="g", options=("a", "b"), truth="a")]
        r1 = engine.run_batch(q, 0.9, gold_pool=g, worker_count=3)
        r2 = engine.run_batch(
            [Question(question_id="q2", options=("a", "b"), truth="a")],
            0.9,
            gold_pool=g,
            worker_count=3,
        )
        assert r1.hit_id != r2.hit_id


class TestVerdictDecided:
    def test_decided_property(self):
        from repro.core.types import Verdict

        assert Verdict(answer="a", confidence=0.9).decided
        assert not Verdict(answer=None, confidence=None).decided


class TestWorkerAnswerValidation:
    def test_accuracy_range_enforced(self):
        from repro.core.types import WorkerAnswer

        with pytest.raises(ValueError, match="not in"):
            WorkerAnswer("w", "a", 1.5)
