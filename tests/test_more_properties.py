"""Second hypothesis suite: economics, market, corpus and budget invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amt.pricing import CostLedger, PriceSchedule
from repro.core.budget import max_workers_within_budget, plan_query
from repro.core.prediction import PredictionInfeasibleError
from repro.core.sampling import WorkerAccuracyEstimator
from repro.tsa.tweets import generate_tweets
from repro.util.stats import binomial_pmf, binomial_tail

prices = st.builds(
    PriceSchedule,
    worker_reward=st.floats(min_value=0.001, max_value=1.0),
    platform_fee=st.floats(min_value=0.0, max_value=1.0),
)


class TestPricingProperties:
    @given(prices, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=100, deadline=None)
    def test_hit_cost_linear(self, schedule, n):
        assert schedule.hit_cost(n) == schedule.per_assignment * n

    @given(
        prices,
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=48),
    )
    @settings(max_examples=100, deadline=None)
    def test_query_cost_decomposes(self, schedule, n, k, w):
        assert math.isclose(
            schedule.query_cost(n, k, w), schedule.hit_cost(n) * k * w
        )

    @given(
        prices,
        st.lists(
            st.tuples(st.integers(1, 20), st.integers(0, 20)), min_size=1, max_size=20
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_ledger_conservation(self, schedule, events):
        """total + avoided always equals per_assignment × (charged+cancelled)."""
        ledger = CostLedger(schedule=schedule)
        for i, (charge, cancel) in enumerate(events):
            ledger.charge(f"h{i}", charge)
            if cancel:
                ledger.cancel(f"h{i}", cancel)
        expected = schedule.per_assignment * (
            ledger.charged_assignments + ledger.cancelled_assignments
        )
        assert math.isclose(ledger.total_cost + ledger.avoided_cost, expected)


class TestBudgetProperties:
    @given(
        st.floats(min_value=0.0, max_value=1000.0),
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=48),
    )
    @settings(max_examples=100, deadline=None)
    def test_affordable_count_is_affordable_and_maximal(self, budget, k, w):
        schedule = PriceSchedule(0.01, 0.005)
        n = max_workers_within_budget(budget, schedule, k, w)
        if n > 0:
            assert n % 2 == 1
            assert schedule.query_cost(n, k, w) <= budget
            # Two more workers would exceed the budget (n is maximal odd)
            assert schedule.query_cost(n + 2, k, w) > budget

    @given(
        st.floats(min_value=0.55, max_value=0.98),
        st.floats(min_value=1.0, max_value=10_000.0),
        st.floats(min_value=0.55, max_value=0.95),
    )
    @settings(max_examples=100, deadline=None)
    def test_plan_never_overspends(self, c, budget, mu):
        schedule = PriceSchedule(0.01, 0.005)
        try:
            plan = plan_query(c, budget, schedule, mu, items_per_unit=50, window=2)
        except PredictionInfeasibleError:
            return
        assert plan.projected_cost <= budget + 1e-9
        if plan.limited_by == "accuracy":
            assert plan.expected_accuracy >= c


class TestEstimatorProperties:
    @given(
        st.lists(st.booleans(), min_size=1, max_size=200),
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=150, deadline=None)
    def test_estimate_between_rate_and_prior(self, outcomes, smoothing, prior):
        est = WorkerAccuracyEstimator(prior_accuracy=prior, smoothing=smoothing)
        for o in outcomes:
            est.record("w", o)
        rate = sum(outcomes) / len(outcomes)
        lo, hi = min(rate, prior), max(rate, prior)
        assert lo - 1e-9 <= est.accuracy("w") <= hi + 1e-9

    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_raw_estimator_is_exact_rate(self, outcomes):
        est = WorkerAccuracyEstimator(smoothing=0.0)
        for o in outcomes:
            est.record("w", o)
        assert est.accuracy("w") == sum(outcomes) / len(outcomes)


class TestBinomialIdentity:
    @given(
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=100, deadline=None)
    def test_tail_equals_pmf_partial_sums(self, n, p):
        for k in (0, 1, n // 2, n):
            tail = binomial_tail(n, k, p)
            direct = sum(binomial_pmf(n, i, p) for i in range(k, n + 1))
            assert math.isclose(tail, direct, rel_tol=1e-9, abs_tol=1e-12)


class TestCorpusProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_generation_deterministic_in_seed(self, seed):
        a = generate_tweets(["Thor"], per_movie=5, seed=seed)
        b = generate_tweets(["Thor"], per_movie=5, seed=seed)
        assert [(t.text, t.sentiment) for t in a] == [
            (t.text, t.sentiment) for t in b
        ]

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_difficulties_in_range(self, seed):
        for tweet in generate_tweets(["Rio"], per_movie=20, seed=seed):
            assert 0.0 <= tweet.difficulty <= 1.0
            assert "Rio" in tweet.text
