"""Hand-computed paper arithmetic, pinned exactly.

Each test re-derives a number from the paper's formulas by hand and pins
the implementation to it — the tightest fidelity check available without
the authors' raw data.
"""

from __future__ import annotations

import math

import pytest

from repro.core.confidence import worker_confidence
from repro.core.domain import lemma1_lower_bound, lemma2_lower_bound
from repro.core.prediction import conservative_worker_count, refined_worker_count
from repro.util.stats import (
    chernoff_majority_lower_bound,
    majority_probability,
)


class TestTheorem3ByHand:
    def test_c90_mu70(self):
        # -ln(1-0.9) / (2·(0.2)²) = 2.302585/0.08 = 28.78 → odd 29.
        assert conservative_worker_count(0.90, 0.70) == 29

    def test_c95_mu70(self):
        # -ln(0.05)/0.08 = 2.9957/0.08 = 37.45 → odd 39.
        assert conservative_worker_count(0.95, 0.70) == 39

    def test_c99_mu60(self):
        # -ln(0.01)/(2·0.01) = 4.6052/0.02 = 230.26 → odd 231.
        assert conservative_worker_count(0.99, 0.60) == 231

    def test_c80_mu80(self):
        # -ln(0.2)/(2·0.09) = 1.6094/0.18 = 8.94 → odd 9.
        assert conservative_worker_count(0.80, 0.80) == 9


class TestTheorem2ByHand:
    def test_bound_value(self):
        # 1 - e^{-2·29·0.04} = 1 - e^{-2.32}.
        assert chernoff_majority_lower_bound(29, 0.70) == pytest.approx(
            1.0 - math.exp(-2.32)
        )


class TestTheorem1ByHand:
    def test_three_workers_mu70(self):
        # P(≥2 of 3) = 3·(0.7²·0.3) + 0.7³ = 0.441 + 0.343 = 0.784.
        assert majority_probability(3, 0.7) == pytest.approx(0.784)

    def test_five_workers_mu60(self):
        # P(≥3 of 5) at p=0.6: C(5,3)0.6³0.4² + C(5,4)0.6⁴0.4 + 0.6⁵
        expected = 10 * 0.6**3 * 0.4**2 + 5 * 0.6**4 * 0.4 + 0.6**5
        assert majority_probability(5, 0.6) == pytest.approx(expected)

    def test_refined_counts_follow(self):
        # mu=0.7: E[P] at n=1,3,5,7 = .7, .784, .837, .874 → first n with
        # E ≥ 0.85 is 7.
        assert refined_worker_count(0.85, 0.7) == 7
        # First n with E ≥ 0.78 is 3.
        assert refined_worker_count(0.78, 0.7) == 3


class TestDefinition2ByHand:
    def test_table3_worker_confidences(self):
        # c = ln((m-1)a/(1-a)), m=3: w4 (a=0.73): ln(2·0.73/0.27).
        assert worker_confidence(0.73, 3) == pytest.approx(
            math.log(2 * 0.73 / 0.27)
        )
        # w2 (a=0.31) is below the 3-way guessing point → negative.
        assert worker_confidence(0.31, 3) < 0


class TestTheorem5ByHand:
    def test_lemma1_k2(self):
        # m > (k-1)/(H₁ - 1·(0.05·2)^1) = 1/(1-0.1) = 1.111...
        assert lemma1_lower_bound(2, 0.05) == pytest.approx(1.0 / 0.9)

    def test_lemma2_k2(self):
        # m > 1/(1 - 2·√0.05) = 1/(1-0.44721) = 1.8090...
        assert lemma2_lower_bound(2, 0.05) == pytest.approx(
            1.0 / (1.0 - 2.0 * math.sqrt(0.05))
        )

    def test_theorem5_k2_uses_tighter_lemma2(self):
        from repro.core.domain import estimate_effective_m

        # max(1.11, 1.81) → m > 1.81 → m = 2.
        assert estimate_effective_m(2, 0.05) == 2


class TestEconomicsByHand:
    def test_paper_example_cost(self):
        # §1: $0.01/HIT-worker; 5 workers on 100 tweets = $5 worker cost.
        from repro.amt.pricing import PriceSchedule

        schedule = PriceSchedule(worker_reward=0.01, platform_fee=0.0)
        assert schedule.query_cost(5, 100, 1) == pytest.approx(5.0)
