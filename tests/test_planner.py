"""Tests for the plan-first query lifecycle (DESIGN.md §10).

Covers the EXPLAIN-style :class:`QueryPlan` artifact, planning purity,
reservation-based admission (``submit(plan=...)``), the structured
:class:`PlanInfeasible` counter-offer, reservation settlement on
completion/cancel, standing-query window re-reservation, and the async
surface's passthroughs.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.amt.market import SimulatedMarket
from repro.core.budget import max_affordable_windows
from repro.core.prediction import PredictionInfeasibleError
from repro.engine.planner import PlanInfeasible, Projection, QueryPlan
from repro.engine.service import AdmissionRejected, QueryState
from repro.system import CDAS
from repro.tsa.app import movie_query
from repro.tsa.stream import TweetStream
from repro.tsa.tweets import generate_tweets, tweet_to_question

PER_ASSIGNMENT = 0.015  # default PriceSchedule: m_c 0.01 + m_s 0.005


def _cdas(small_pool, seed=41) -> CDAS:
    return CDAS.with_default_jobs(SimulatedMarket(small_pool, seed=seed), seed=seed)


def _calibrated(small_pool, seed=41) -> CDAS:
    cdas = _cdas(small_pool, seed=seed)
    gold = generate_tweets(["gold-movie"], per_movie=8, seed=seed + 7)
    cdas.calibrate(
        [tweet_to_question(t) for t in gold], workers_per_hit=6, hits=1
    )
    return cdas


def _tsa_inputs(movies=("alpha", "beta"), per_movie=18, seed=5, workers=5):
    tweets = generate_tweets(list(movies), per_movie=per_movie, seed=seed)
    gold = generate_tweets(["gold-movie"], per_movie=10, seed=seed + 1)
    return {"tweets": tweets, "gold_tweets": gold, "worker_count": workers}


def _standing_stream(per_window=8, window_count=3, unit_seconds=60.0):
    tweets = generate_tweets(
        ["kungfu"], per_movie=per_window * window_count, seed=11
    )
    spaced = []
    for i, tweet in enumerate(tweets):
        window_index, slot = divmod(i, per_window)
        spaced.append(
            dataclasses.replace(
                tweet, timestamp=window_index * unit_seconds + slot
            )
        )
    return TweetStream.from_corpus(spaced, unit_seconds=unit_seconds)


class TestQueryPlanArtifact:
    def test_projection_with_forced_workers(self, small_pool):
        service = _cdas(small_pool).service()
        plan = service.plan(
            "twitter-sentiment", movie_query("alpha", 0.9),
            tenant="acme", batch_size=6, **_tsa_inputs()
        )
        assert isinstance(plan, QueryPlan)
        assert plan.job_name == "twitter-sentiment"
        assert plan.tenant == "acme"
        assert plan.items == 18
        assert plan.projected_hits == 3  # 18 tweets / batch 6
        assert plan.workers_per_item == 5
        assert plan.projected_cost == pytest.approx(3 * 5 * PER_ASSIGNMENT)
        assert not plan.standing
        assert plan.upfront_reservation == pytest.approx(plan.projected_cost)
        assert len(plan.windows) == 1
        assert plan.windows[0].items == 18

    def test_predicted_workers_follow_g_of_c(self, small_pool):
        cdas = _calibrated(small_pool)
        service = cdas.service()
        inputs = _tsa_inputs()
        inputs.pop("worker_count")
        plan = service.plan(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **inputs
        )
        assert plan.workers_per_item == cdas.engine.predict_workers(0.9)
        assert plan.workers_per_item % 2 == 1
        assert plan.expected_accuracy >= 0.9
        assert plan.mean_accuracy == pytest.approx(cdas.engine.mean_accuracy())

    def test_uncalibrated_prediction_is_an_honest_error(self, small_pool):
        service = _cdas(small_pool).service()
        inputs = _tsa_inputs()
        inputs.pop("worker_count")
        with pytest.raises(PredictionInfeasibleError):
            service.plan(
                "twitter-sentiment", movie_query("alpha", 0.9),
                batch_size=6, **inputs
            )

    def test_planning_is_pure(self, small_pool):
        service = _cdas(small_pool).service()
        before_counter = service.engine.hit_counter
        for _ in range(3):
            service.plan(
                "twitter-sentiment", movie_query("alpha", 0.9),
                batch_size=6, **_tsa_inputs()
            )
        assert service.engine.market.published_hits == 0
        assert service.engine.market.ledger.total_cost == 0.0
        assert service.engine.hit_counter == before_counter
        assert service.scheduler.events_processed == 0
        assert service.handles == ()

    def test_it_projection_counts_tag_questions(self, small_pool):
        from repro.it.images import generate_images

        service = _cdas(small_pool).service()
        images = generate_images(per_subject=1, seed=3)[:3]
        plan = service.plan(
            "image-tagging", movie_query("img", 0.9),
            images=images, worker_count=5,
        )
        assert plan.items == sum(len(i.candidate_tags) for i in images)
        assert plan.projected_hits == 1  # 3 images / 5 per HIT
        assert plan.projected_cost == pytest.approx(5 * PER_ASSIGNMENT)

    def test_standing_plan_projects_per_window(self, small_pool):
        cdas = _cdas(small_pool)
        service = cdas.service()
        gold = generate_tweets(["gold-movie"], per_movie=10, seed=12)
        plan = service.plan(
            "twitter-sentiment", movie_query("kungfu", 0.9, window=1),
            stream=_standing_stream(), windows=3, gold_tweets=gold,
            worker_count=5, batch_size=4,
        )
        assert plan.standing
        assert len(plan.windows) == 3
        assert all(w.items == 8 and w.hits == 2 for w in plan.windows)
        per_window = 2 * 5 * PER_ASSIGNMENT
        assert plan.upfront_reservation == pytest.approx(per_window)
        assert plan.projected_cost == pytest.approx(3 * per_window)

    def test_describe_is_the_explain_table(self, small_pool):
        service = _cdas(small_pool).service()
        plan = service.plan(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        text = plan.describe()
        for needle in (
            "workers per item", "expected accuracy", "projected HITs",
            "projected spend", "reserves up front",
        ):
            assert needle in text

    def test_plan_validates_like_submit(self, small_pool):
        service = _cdas(small_pool).service()
        with pytest.raises(KeyError):
            service.plan("ghost", movie_query("alpha", 0.9))
        with pytest.raises(ValueError, match="gold_tweets"):
            service.plan("twitter-sentiment", movie_query("alpha", 0.9))
        with pytest.raises(ValueError, match="matched no tweets"):
            service.plan(
                "twitter-sentiment", movie_query("nomatch", 0.9), **_tsa_inputs()
            )
        with pytest.raises(ValueError, match="budget"):
            service.plan(
                "twitter-sentiment", movie_query("alpha", 0.9),
                budget=-1.0, **_tsa_inputs()
            )
        with pytest.raises(ValueError, match="priority"):
            service.plan(
                "twitter-sentiment", movie_query("alpha", 0.9),
                priority=0.0, **_tsa_inputs()
            )
        assert service.engine.market.published_hits == 0

    def test_jobs_without_projector_cannot_plan(self, small_pool):
        from repro.engine.jobs import JobSpec
        from repro.engine.templates import QueryTemplate
        from repro.engine.query import Query

        cdas = _cdas(small_pool)
        spec = JobSpec(
            name="no-projector",
            template=QueryTemplate(
                job_name="no-projector", instructions="i",
                item_label="Item", prompt="p",
            ),
            computer_tasks=("t",),
            human_tasks=("h",),
        )
        cdas.register_job(
            spec,
            submitter=lambda engine, sink, plan, inputs: (
                sink.add_batches(iter(()), required_accuracy=0.9),
                lambda: "ok",
            )[1],
        )
        query = Query(keywords=("x",), required_accuracy=0.9, domain=("a", "b"))
        with pytest.raises(ValueError, match="projector"):
            cdas.service().plan("no-projector", query)
        # ...but plan-less submission still works (and tolerates the
        # missing projector in its best-effort auto-plan).
        handle = cdas.service().submit("no-projector", query)
        assert handle.plan is None

    def test_projector_requires_submitter(self, small_pool):
        from repro.engine.jobs import JobSpec
        from repro.engine.templates import QueryTemplate

        cdas = _cdas(small_pool)
        spec = JobSpec(
            name="lonely-projector",
            template=QueryTemplate(
                job_name="lonely-projector", instructions="i",
                item_label="Item", prompt="p",
            ),
            computer_tasks=("t",),
            human_tasks=("h",),
        )
        with pytest.raises(ValueError, match="projector but no submitter"):
            cdas.register_job(
                spec,
                runner=lambda e, p, i: None,
                projector=lambda e, p, i: Projection(windows=((1, 1),)),
            )


class TestPlanSubmission:
    def test_plan_path_matches_plan_less_bit_for_bit(self, small_pool):
        inputs = _tsa_inputs()
        query = movie_query("alpha", 0.9)

        plain_service = _cdas(small_pool).service(max_in_flight=2)
        plain = plain_service.submit(
            "twitter-sentiment", query, batch_size=6, **inputs
        )
        plain_result = plain.result()

        planned_service = _cdas(small_pool).service(max_in_flight=2)
        plan = planned_service.plan(
            "twitter-sentiment", query, batch_size=6, **inputs
        )
        planned = planned_service.submit(plan=plan)
        planned_result = planned.result()

        assert plain_result.report == planned_result.report
        assert [h.hit_id for h in plain_result.hit_results] == [
            h.hit_id for h in planned_result.hit_results
        ]
        assert [h.cost for h in plain_result.hit_results] == [
            h.cost for h in planned_result.hit_results
        ]

    def test_plan_less_submit_attaches_plan_best_effort(self, small_pool):
        service = _cdas(small_pool).service()
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        assert handle.plan is not None
        assert handle.plan.projected_hits == 3
        # ...but reservation accounting stays off (legacy reactive path).
        assert handle.reserved == 0.0
        assert service.tenant_reserved("default") == 0.0

    def test_submit_reserve_true_auto_plans(self, small_pool):
        service = _cdas(small_pool).service()
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            reserve=True, batch_size=6, **_tsa_inputs()
        )
        assert handle.plan is not None
        assert handle.reserved == pytest.approx(handle.plan.projected_cost)
        assert service.tenant_reserved("default") == pytest.approx(
            handle.plan.projected_cost
        )

    def test_plan_shape_rejects_extra_arguments(self, small_pool):
        service = _cdas(small_pool).service()
        plan = service.plan(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        with pytest.raises(ValueError, match="pass nothing else"):
            service.submit("twitter-sentiment", plan=plan)
        # Overrides of plan-bound fields are rejected, never silently
        # dropped (re-plan to change tenant/budget/priority).
        for override in (
            {"tenant": "other"},
            {"budget": 0.5},
            {"priority": 2.0},
        ):
            with pytest.raises(ValueError, match="pass nothing else"):
                service.submit(plan=plan, **override)
        with pytest.raises(ValueError, match="job_name and query"):
            service.submit()

    def test_plan_carries_tenant_budget_priority(self, small_pool):
        service = _cdas(small_pool).service()
        plan = service.plan(
            "twitter-sentiment", movie_query("alpha", 0.9),
            tenant="acme", budget=5.0, priority=2.5,
            batch_size=6, **_tsa_inputs()
        )
        handle = service.submit(plan=plan)
        assert handle.tenant == "acme"
        assert handle._record.budget == 5.0
        assert handle._record.priority == 2.5


class TestPlanInfeasible:
    def test_tenant_cap_refusal_incurs_zero_spend(self, small_pool):
        cdas = _calibrated(small_pool)
        service = cdas.service(max_in_flight=2)
        service.register_tenant("acme", budget_cap=0.10)
        plan = service.plan(
            "twitter-sentiment", movie_query("alpha", 0.9), tenant="acme",
            batch_size=6, **_tsa_inputs()
        )
        assert plan.projected_cost > 0.10
        published_before = cdas.market.published_hits
        with pytest.raises(PlanInfeasible) as excinfo:
            service.submit(plan=plan)
        # Zero market interaction, zero scheduler work, no handle issued.
        assert cdas.market.published_hits == published_before
        assert service.tenant_spend("acme") == 0.0
        assert service.tenant_reserved("acme") == 0.0
        assert service.scheduler.events_processed == 0
        assert service.handles == ()
        # The structured rejection carries the plan and the counter-offer.
        exc = excinfo.value
        assert exc.plan is plan
        assert not exc.decision.admitted
        assert exc.decision.tenant_remaining == pytest.approx(0.10)
        offer = exc.counter_offer
        assert offer is not None
        assert offer.budget == pytest.approx(0.10)
        assert 0 < offer.workers_per_item < plan.workers_per_item
        assert offer.workers_per_item % 2 == 1
        assert offer.achievable_accuracy is not None
        assert offer.achievable_accuracy < plan.expected_accuracy
        assert offer.affordable_windows == 0
        assert "counter-offer" in offer.describe()

    def test_per_query_budget_refusal(self, small_pool):
        cdas = _calibrated(small_pool)
        service = cdas.service()
        plan = service.plan(
            "twitter-sentiment", movie_query("alpha", 0.9),
            budget=0.05, batch_size=6, **_tsa_inputs()
        )
        with pytest.raises(PlanInfeasible, match="per-query budget"):
            service.submit(plan=plan)

    def test_uncapped_tenant_always_admits(self, small_pool):
        service = _cdas(small_pool).service()
        plan = service.plan(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        decision = service.preadmit(plan)
        assert decision.admitted
        assert decision.tenant_remaining is None
        assert decision.limit is None
        handle = service.submit(plan=plan)
        assert handle.result().report.subject == "alpha"

    def test_plan_infeasible_is_not_admission_rejected(self, small_pool):
        """PlanInfeasible is its own negotiation signal; reactive
        AdmissionRejected keeps meaning 'cap already committed'."""
        assert not issubclass(PlanInfeasible, AdmissionRejected)


class TestReservationAccounting:
    def test_cancel_before_publish_releases_full_reservation(self, small_pool):
        cdas = _calibrated(small_pool)
        service = cdas.service()
        service.register_tenant("acme", budget_cap=0.30)
        inputs = _tsa_inputs()
        first = service.submit(
            plan=service.plan(
                "twitter-sentiment", movie_query("alpha", 0.9),
                tenant="acme", batch_size=6, **inputs
            )
        )
        reserved = service.tenant_reserved("acme")
        assert reserved == pytest.approx(3 * 5 * PER_ASSIGNMENT)
        # A second identical plan no longer fits the cap...
        second_plan = service.plan(
            "twitter-sentiment", movie_query("beta", 0.9),
            tenant="acme", batch_size=6, **inputs
        )
        with pytest.raises(PlanInfeasible):
            service.submit(plan=second_plan)
        # ...until the first is cancelled before anything was published:
        # the full reservation is released and the slot reopens.
        assert first.cancel()
        assert first.spend == 0.0
        assert service.tenant_reserved("acme") == 0.0
        assert service.tenant_committed("acme") == 0.0
        second = service.submit(plan=second_plan)
        assert second.result().report.subject == "beta"

    def test_mid_flight_cancel_settles_to_incurred_spend(self, small_pool):
        cdas = _calibrated(small_pool)
        service = cdas.service(max_in_flight=1)
        service.register_tenant("acme", budget_cap=1.0)
        handle = service.submit(
            plan=service.plan(
                "twitter-sentiment", movie_query("alpha", 0.9),
                tenant="acme", batch_size=6,
                **_tsa_inputs(movies=("alpha",), per_movie=30)
            )
        )
        reserved = service.tenant_reserved("acme")
        assert reserved > 0
        while handle.progress().spend == 0.0:
            assert service.step()
        handle.cancel()
        service.run_until_idle()
        spend = handle.spend
        assert 0 < spend < reserved
        # Settlement: the reservation collapses to the incurred spend.
        assert handle.reserved == 0.0
        assert service.tenant_reserved("acme") == 0.0
        assert service.tenant_committed("acme") == pytest.approx(spend)

    def test_completion_refunds_over_projection(self, small_pool):
        cdas = _calibrated(small_pool)
        service = cdas.service()
        service.register_tenant("acme", budget_cap=0.30)
        handle = service.submit(
            plan=service.plan(
                "twitter-sentiment", movie_query("alpha", 0.9),
                tenant="acme", batch_size=6, **_tsa_inputs()
            )
        )
        projected = handle.plan.projected_cost
        handle.result()
        # Committed settles to actual spend; any over-projection is
        # refunded to the tenant's headroom the moment the query is DONE.
        assert service.tenant_committed("acme") == pytest.approx(handle.spend)
        assert handle.spend <= projected + 1e-9
        assert service.tenant_reserved("acme") == 0.0

    def test_concurrent_plans_cannot_jointly_over_reserve(self, small_pool):
        cdas = _calibrated(small_pool)
        service = cdas.service(max_in_flight=2)
        service.register_tenant("acme", budget_cap=0.40)
        inputs = _tsa_inputs()
        cost = 3 * 5 * PER_ASSIGNMENT  # 0.225 per query
        first = service.submit(
            plan=service.plan(
                "twitter-sentiment", movie_query("alpha", 0.9),
                tenant="acme", batch_size=6, **inputs
            )
        )
        # Nothing spent yet — a reactive check would admit the second
        # query too; the reservation refuses the joint over-commitment.
        assert service.tenant_spend("acme") == 0.0
        assert service.tenant_committed("acme") == pytest.approx(cost)
        with pytest.raises(PlanInfeasible) as excinfo:
            service.submit(
                plan=service.plan(
                    "twitter-sentiment", movie_query("beta", 0.9),
                    tenant="acme", batch_size=6, **inputs
                )
            )
        assert excinfo.value.decision.tenant_remaining == pytest.approx(
            0.40 - cost
        )
        assert first.result().report.subject == "alpha"

    def test_standing_window_rereservation_runs_dry_cleanly(self, small_pool):
        cdas = _calibrated(small_pool)
        service = cdas.service(max_in_flight=2)
        # Each window: 8 tweets / batch 4 = 2 HITs × 5 workers = $0.15.
        # The cap covers one window, not two.
        service.register_tenant("acme", budget_cap=0.20)
        gold = generate_tweets(["gold-movie"], per_movie=10, seed=12)
        plan = service.plan(
            "twitter-sentiment", movie_query("kungfu", 0.9, window=1),
            tenant="acme", stream=_standing_stream(), windows=3,
            gold_tweets=gold, worker_count=5, batch_size=4,
        )
        assert plan.upfront_reservation == pytest.approx(0.15)
        assert plan.projected_cost == pytest.approx(0.45)
        handle = service.submit(plan=plan)  # first window fits: admitted
        result = handle.result()
        # Window 2's re-reservation was refused cleanly: the query
        # completed with window 1's results only, flagged as exhausted.
        assert handle.state is QueryState.DONE
        assert handle.progress().budget_exhausted
        assert len(result.records) == 8
        assert handle.progress().hits_completed == 2
        assert handle.spend <= 0.20 + 1e-9
        assert service.tenant_committed("acme") == pytest.approx(handle.spend)

    def test_standing_query_inside_budget_runs_every_window(self, small_pool):
        cdas = _calibrated(small_pool)
        service = cdas.service(max_in_flight=2)
        service.register_tenant("acme", budget_cap=1.0)
        gold = generate_tweets(["gold-movie"], per_movie=10, seed=12)
        handle = service.submit(
            plan=service.plan(
                "twitter-sentiment", movie_query("kungfu", 0.9, window=1),
                tenant="acme", stream=_standing_stream(), windows=3,
                gold_tweets=gold, worker_count=5, batch_size=4,
            )
        )
        result = handle.result()
        assert len(result.records) == 24
        assert not handle.progress().budget_exhausted
        # All three windows were reserved cumulatively, then settled.
        assert service.tenant_committed("acme") == pytest.approx(handle.spend)

    def test_reserved_query_can_fill_the_cap_exactly(self, small_pool):
        """A plan reserving exactly the tenant's remaining cap is
        admitted and runs to completion (its own reservation must not
        read as 'cap already committed')."""
        cdas = _calibrated(small_pool)
        service = cdas.service()
        cost = 3 * 5 * PER_ASSIGNMENT
        service.register_tenant("acme", budget_cap=cost)
        handle = service.submit(
            plan=service.plan(
                "twitter-sentiment", movie_query("alpha", 0.9),
                tenant="acme", batch_size=6, **_tsa_inputs()
            )
        )
        result = handle.result()
        assert handle.state is QueryState.DONE
        assert len(result.records) == 18


class TestAsyncPlanSurface:
    def test_async_plan_and_submit_plan(self, small_pool):
        import asyncio

        async def run():
            service = _cdas(small_pool).async_service()
            plan = service.plan(
                "twitter-sentiment", movie_query("alpha", 0.9),
                batch_size=6, **_tsa_inputs()
            )
            assert service.preadmit(plan).admitted
            handle = service.submit(plan=plan)
            result = await handle.result()
            assert handle.plan is plan  # async handle mirrors .plan
            assert handle.reserved == 0.0  # settled on completion
            return result

        result = asyncio.run(run())
        assert result.report.subject == "alpha"

    def test_async_submit_raises_plan_infeasible_synchronously(self, small_pool):
        import asyncio

        async def run():
            cdas = _calibrated(small_pool)
            service = cdas.async_service()
            service.register_tenant("acme", budget_cap=0.05)
            plan = service.plan(
                "twitter-sentiment", movie_query("alpha", 0.9),
                tenant="acme", batch_size=6, **_tsa_inputs()
            )
            with pytest.raises(PlanInfeasible):
                service.submit(plan=plan)
            assert service.tenant_spend("acme") == 0.0

        asyncio.run(run())

    def test_mux_plan_passthrough(self, small_pool):
        import asyncio

        from repro.engine.aio import ServiceMux

        async def run():
            cdas = _cdas(small_pool)
            async with ServiceMux() as mux:
                mux.add("svc", cdas.async_service(name="svc"))
                plan = mux.plan(
                    "svc", "twitter-sentiment", movie_query("alpha", 0.9),
                    batch_size=6, **_tsa_inputs()
                )
                handle = mux.submit("svc", plan=plan)
                result = await handle.result()
            return result

        result = asyncio.run(run())
        assert len(result.records) == 18


class TestBudgetHelpers:
    def test_max_affordable_windows(self):
        costs = (0.15, 0.15, 0.15)
        assert max_affordable_windows(0.0, costs) == 0
        assert max_affordable_windows(0.15, costs) == 1
        assert max_affordable_windows(0.31, costs) == 2
        assert max_affordable_windows(0.45, costs) == 3
        assert max_affordable_windows(9.0, ()) == 0
        with pytest.raises(ValueError):
            max_affordable_windows(-0.1, costs)
