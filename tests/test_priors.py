"""Tests for non-uniform answer priors in Equation 4 (extension)."""

from __future__ import annotations

import pytest

from repro.core.confidence import answer_confidences
from repro.core.domain import AnswerDomain
from repro.core.types import WorkerAnswer
from repro.core.verification import ProbabilisticVerification


def _obs(*answers: tuple[str, float]) -> list[WorkerAnswer]:
    return [WorkerAnswer(f"w{i}", a, acc) for i, (a, acc) in enumerate(answers)]


class TestPriorsInEquation4:
    def test_uniform_prior_matches_paper_form(self, pos_neu_neg):
        obs = _obs(("pos", 0.7), ("neg", 0.6))
        uniform = {"pos": 1 / 3, "neu": 1 / 3, "neg": 1 / 3}
        with_priors = answer_confidences(obs, pos_neu_neg, priors=uniform)
        without = answer_confidences(obs, pos_neu_neg)
        for label in pos_neu_neg.labels:
            assert with_priors[label] == pytest.approx(without[label])

    def test_prior_breaks_symmetric_tie(self, pos_neu_neg):
        # One pos vote, one neg vote, equal accuracies: uniform priors tie;
        # a pos-heavy prior must favour pos.
        obs = _obs(("pos", 0.7), ("neg", 0.7))
        skewed = {"pos": 0.6, "neu": 0.1, "neg": 0.3}
        rho = answer_confidences(obs, pos_neu_neg, priors=skewed)
        assert rho["pos"] > rho["neg"]

    def test_still_a_distribution(self, pos_neu_neg):
        obs = _obs(("pos", 0.8), ("neu", 0.55), ("neg", 0.6))
        skewed = {"pos": 0.5, "neu": 0.25, "neg": 0.25}
        rho = answer_confidences(obs, pos_neu_neg, priors=skewed)
        assert sum(rho.values()) == pytest.approx(1.0)

    def test_strong_evidence_overrides_prior(self, pos_neu_neg):
        obs = _obs(("neg", 0.95), ("neg", 0.95), ("neg", 0.95))
        pos_heavy = {"pos": 0.8, "neu": 0.1, "neg": 0.1}
        rho = answer_confidences(obs, pos_neu_neg, priors=pos_heavy)
        assert rho["neg"] > rho["pos"]

    def test_priors_must_sum_to_one(self, pos_neu_neg):
        obs = _obs(("pos", 0.7))
        with pytest.raises(ValueError, match="sum to 1"):
            answer_confidences(obs, pos_neu_neg, priors={"pos": 0.5, "neu": 0.2, "neg": 0.2})

    def test_priors_must_cover_labels(self, pos_neu_neg):
        obs = _obs(("pos", 0.7))
        with pytest.raises(ValueError, match="missing labels"):
            answer_confidences(obs, pos_neu_neg, priors={"pos": 1.0})

    def test_priors_must_be_positive(self, pos_neu_neg):
        obs = _obs(("pos", 0.7))
        with pytest.raises(ValueError, match="strictly positive"):
            answer_confidences(
                obs, pos_neu_neg, priors={"pos": 1.0, "neu": 0.0, "neg": 0.0}
            )

    def test_open_domain_rejected(self):
        domain = AnswerDomain(labels=("a", "b"), m=5, closed_domain=False)
        obs = _obs(("a", 0.7))
        with pytest.raises(ValueError, match="closed domain"):
            answer_confidences(
                domain=domain,
                observation=obs,
                priors={"a": 0.5, "b": 0.5},
            )


class TestVerifierWithPriors:
    def test_verifier_accepts_prior_tuples(self, pos_neu_neg):
        obs = _obs(("pos", 0.7), ("neg", 0.7))
        verifier = ProbabilisticVerification(
            domain=pos_neu_neg,
            priors=(("pos", 0.6), ("neu", 0.1), ("neg", 0.3)),
        )
        assert verifier.verify(obs).answer == "pos"

    def test_default_has_no_priors(self, pos_neu_neg):
        verifier = ProbabilisticVerification(domain=pos_neu_neg)
        assert verifier.priors is None
