"""Property-based tests (hypothesis) on the core model's invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confidence import (
    accuracy_from_confidence,
    answer_confidences,
    worker_confidence,
)
from repro.core.domain import AnswerDomain, estimate_effective_m
from repro.core.online import run_online
from repro.core.prediction import refined_worker_count
from repro.core.termination import MinMax, TerminationSnapshot
from repro.core.types import WorkerAnswer
from repro.core.verification import (
    HalfVoting,
    MajorityVoting,
    ProbabilisticVerification,
)
from repro.util.stats import (
    binomial_tail,
    chernoff_majority_lower_bound,
    majority_probability,
    majority_threshold,
    softmax_from_logs,
)

LABELS = ("pos", "neu", "neg")

accuracies = st.floats(min_value=0.01, max_value=0.99)
answers = st.sampled_from(LABELS)
worker_answers = st.builds(
    WorkerAnswer,
    worker_id=st.uuids().map(str),
    answer=answers,
    accuracy=accuracies,
)
observations = st.lists(worker_answers, min_size=1, max_size=25)


class TestConfidenceProperties:
    @given(observations)
    @settings(max_examples=200, deadline=None)
    def test_confidences_form_distribution(self, obs):
        rho = answer_confidences(obs, AnswerDomain.closed(LABELS))
        assert all(0.0 <= v <= 1.0 for v in rho.values())
        assert math.isclose(sum(rho.values()), 1.0, rel_tol=1e-9)

    @given(observations, answers)
    @settings(max_examples=200, deadline=None)
    def test_adding_confident_vote_raises_confidence(self, obs, label):
        domain = AnswerDomain.closed(LABELS)
        before = answer_confidences(obs, domain)[label]
        extra = WorkerAnswer("extra", label, 0.9)
        after = answer_confidences([*obs, extra], domain)[label]
        assert after >= before - 1e-12

    @given(accuracies, st.integers(min_value=2, max_value=10))
    @settings(max_examples=200, deadline=None)
    def test_confidence_accuracy_roundtrip(self, accuracy, m):
        c = worker_confidence(accuracy, m)
        assert math.isclose(accuracy_from_confidence(c, m), accuracy, rel_tol=1e-6)

    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_softmax_is_distribution(self, logs):
        probs = softmax_from_logs(logs)
        assert math.isclose(sum(probs), 1.0, rel_tol=1e-9)
        assert all(p >= 0 for p in probs)


class TestPredictionProperties:
    @given(
        st.floats(min_value=0.55, max_value=0.99),
        st.floats(min_value=0.55, max_value=0.95),
    )
    @settings(max_examples=100, deadline=None)
    def test_refined_count_meets_requirement_and_is_minimal(self, c, mu):
        n = refined_worker_count(c, mu)
        assert n % 2 == 1
        assert majority_probability(n, mu) >= c
        if n > 1:
            assert majority_probability(n - 2, mu) < c

    @given(
        st.integers(min_value=1, max_value=201).filter(lambda n: n % 2 == 1),
        st.floats(min_value=0.51, max_value=0.99),
    )
    @settings(max_examples=100, deadline=None)
    def test_chernoff_below_exact(self, n, mu):
        assert chernoff_majority_lower_bound(n, mu) <= majority_probability(n, mu) + 1e-12

    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=0, max_value=300),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=200, deadline=None)
    def test_binomial_tail_bounds_and_monotonicity(self, n, k, p):
        tail = binomial_tail(n, k, p)
        assert 0.0 <= tail <= 1.0
        assert binomial_tail(n, k + 1, p) <= tail + 1e-12


class TestVerifierProperties:
    @given(observations)
    @settings(max_examples=200, deadline=None)
    def test_probabilistic_never_abstains(self, obs):
        verdict = ProbabilisticVerification(
            domain=AnswerDomain.closed(LABELS)
        ).verify(obs)
        assert verdict.answer in LABELS

    @given(observations)
    @settings(max_examples=200, deadline=None)
    def test_half_implies_majority(self, obs):
        """Any answer accepted by half-voting is also the majority-voting
        winner: a >half share is necessarily the unique plurality."""
        half = HalfVoting().verify(obs)
        if half.answer is not None:
            majority = MajorityVoting().verify(obs)
            assert majority.answer == half.answer

    @given(observations)
    @settings(max_examples=200, deadline=None)
    def test_equal_accuracy_verification_agrees_with_plurality(self, obs):
        same = [
            WorkerAnswer(wa.worker_id, wa.answer, 0.8) for wa in obs
        ]
        verdict = ProbabilisticVerification(
            domain=AnswerDomain.closed(LABELS)
        ).verify(same)
        majority = MajorityVoting().verify(same)
        if majority.answer is not None:
            assert verdict.answer == majority.answer

    @given(observations, st.permutations(range(25)))
    @settings(max_examples=100, deadline=None)
    def test_verification_order_invariant(self, obs, perm):
        domain = AnswerDomain.closed(LABELS)
        shuffled = [obs[i % len(obs)] for i in perm[: len(obs)]]
        # Build a true permutation of obs indices.
        idx = [i for i in perm if i < len(obs)]
        shuffled = [obs[i] for i in idx]
        if len(shuffled) != len(obs):
            return
        a = answer_confidences(obs, domain)
        b = answer_confidences(shuffled, domain)
        for label in LABELS:
            assert math.isclose(a[label], b[label], rel_tol=1e-9)


class TestDomainProperties:
    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=100, deadline=None)
    def test_effective_m_floors(self, k):
        m = estimate_effective_m(k)
        assert m >= max(2, k)

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=2, max_value=50))
    @settings(max_examples=100, deadline=None)
    def test_effective_m_respects_known_domain(self, k, known):
        m = estimate_effective_m(k, known_domain_size=known)
        assert m <= known


class TestOnlineProperties:
    @given(
        st.lists(
            st.tuples(answers, st.floats(min_value=0.4, max_value=0.95)),
            min_size=2,
            max_size=20,
        ),
        st.floats(min_value=0.55, max_value=0.9),
    )
    @settings(max_examples=100, deadline=None)
    def test_minmax_stop_is_stable_under_assumed_accuracy(self, specs, mu):
        """Whenever MinMax stops early, completing the HIT with runner-up
        votes at the assumed accuracy cannot change the winner."""
        domain = AnswerDomain.closed(LABELS)
        obs = [WorkerAnswer(f"w{i}", a, acc) for i, (a, acc) in enumerate(specs)]
        result = run_online(obs, domain, mean_accuracy=mu, strategy=MinMax())
        if not result.terminated_early:
            return
        used = result.answers_used
        scores = result.verdict.scores
        runner_up = max(
            (lab for lab in LABELS if lab != result.verdict.answer),
            key=lambda lab: scores[lab],
        )
        adversarial = list(obs[:used]) + [
            WorkerAnswer(f"adv{i}", runner_up, mu)
            for i in range(len(obs) - used)
        ]
        final = answer_confidences(adversarial, domain)
        assert max(LABELS, key=lambda lab: final[lab]) == result.verdict.answer

    @given(
        st.lists(
            st.tuples(answers, st.floats(min_value=0.4, max_value=0.95)),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_snapshot_min_max_bracket_expectations(self, specs):
        domain = AnswerDomain.closed(LABELS)
        obs = [WorkerAnswer(f"w{i}", a, acc) for i, (a, acc) in enumerate(specs)]
        from repro.core.confidence import answer_log_weights

        snap = TerminationSnapshot(
            log_weights=answer_log_weights(obs, domain),
            domain=domain,
            remaining_workers=3,
            mean_accuracy=0.7,
        )
        min_p1, max_p2 = snap.adversarial_confidences()
        exp_p1, exp_p2 = snap.expected_confidences()
        assert min_p1 <= exp_p1 + 1e-9
        assert max_p2 >= exp_p2 - 1e-9


class TestMajorityThresholdProperty:
    @given(st.integers(min_value=1, max_value=999))
    @settings(max_examples=200, deadline=None)
    def test_threshold_is_smallest_strict_majority(self, n):
        t = majority_threshold(n)
        assert t > n / 2
        assert t - 1 <= n / 2
