"""Second-round coverage: interleaving, gold indistinguishability, scale."""

from __future__ import annotations

import pytest

from repro.amt.hit import HIT, Question
from repro.amt.market import SimulatedMarket
from repro.core.online import OnlineAggregator
from repro.core.types import WorkerAnswer
from repro.engine.engine import CrowdsourcingEngine
from repro.engine.templates import QueryTemplate
from repro.it.search import TagIndex


def _q(qid: str, gold: bool = False) -> Question:
    return Question(
        question_id=qid,
        options=("a", "b", "c"),
        truth="a",
        is_gold=gold,
        payload=f"payload for {qid}",
    )


class TestGoldIndistinguishability:
    def test_gold_and_real_render_identically(self):
        """§3.3 requires workers cannot spot the testing samples: apart
        from the ids, a gold question's markup must match a real one's."""
        template = QueryTemplate(
            job_name="j", instructions="i", item_label="Item", prompt="p"
        )
        real = _q("x")
        gold = Question(
            question_id="x",  # same id to isolate the is_gold flag
            options=real.options,
            truth=real.truth,
            is_gold=True,
            payload=real.payload,
        )
        assert template.render_question(real) == template.render_question(gold)
        assert "gold" not in template.render_question(gold).lower()


class TestInterleavedHITs:
    def test_two_hits_pull_independently(self, small_pool):
        market = SimulatedMarket(small_pool, seed=81)
        h1 = market.publish(HIT(hit_id="h1", questions=(_q("q1"),), assignments=4))
        h2 = market.publish(HIT(hit_id="h2", questions=(_q("q2"),), assignments=4))
        # Interleave pulls; per-HIT attribution must stay exact.
        h1.next_submission()
        h2.next_submission()
        h1.next_submission()
        h2.cancel()
        h1.collect_all()
        per = market.schedule.per_assignment
        assert market.ledger.cost_of("h1") == pytest.approx(4 * per)
        assert market.ledger.cost_of("h2") == pytest.approx(1 * per)
        assert market.ledger.avoided_cost == pytest.approx(3 * per)

    def test_interleaving_does_not_change_answers(self, small_pool):
        def answers_for(interleave: bool) -> list[dict]:
            market = SimulatedMarket(small_pool, seed=82)
            h1 = market.publish(HIT(hit_id="h1", questions=(_q("q1"),), assignments=3))
            h2 = market.publish(HIT(hit_id="h2", questions=(_q("q2"),), assignments=3))
            if interleave:
                out = []
                for _ in range(3):
                    out.append(h1.next_submission().answers)
                    h2.next_submission()
                return out
            return [a.answers for a in h1.collect_all()]

        assert answers_for(True) == answers_for(False)


class TestUnanimousConfidenceMonotone:
    def test_confidence_rises_with_unanimous_votes(self, pos_neu_neg):
        agg = OnlineAggregator(pos_neu_neg, hired_workers=12, mean_accuracy=0.7)
        last = 0.0
        for i in range(12):
            point = agg.submit(WorkerAnswer(f"w{i}", "pos", 0.8))
            assert point.best_confidence >= last - 1e-12
            last = point.best_confidence
        assert last > 0.99


class TestTagIndexDeterminism:
    def test_equal_confidence_ties_break_by_id(self):
        index = TagIndex()
        index.add("sun", "img-z", 0.8)
        index.add("sun", "img-a", 0.8)
        assert index.search("sun") == ["img-a", "img-z"]


class TestModerateScale:
    def test_engine_handles_wide_batch_quickly(self, small_pool):
        """A 120-question, 15-worker batch (1800 answers) stays correct;
        this doubles as a scale smoke test for the per-question loops."""
        market = SimulatedMarket(small_pool, seed=83)
        engine = CrowdsourcingEngine(market, seed=83)
        questions = [_q(f"q{i}") for i in range(120)]
        gold = [_q(f"g{i}") for i in range(40)]
        result = engine.run_batch(questions, 0.9, gold_pool=gold, worker_count=15)
        assert len(result.records) == 120
        assert result.accuracy > 0.9
        assert result.assignments_collected == 15
