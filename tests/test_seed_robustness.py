"""Seed robustness: the paper's shapes must hold across seeds.

A reproduction that only works at one magic seed is a coincidence.  These
tests re-run downscaled versions of the headline experiments at several
seeds and assert the *qualitative* claims each time.  Sizes are kept small
(the full-size sweeps live in the experiment defaults / benchmarks).
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig07_accuracy_vs_workers,
    fig08_accuracy_vs_required,
    fig15_sampling_worker_accuracy,
)
from repro.experiments.ablations import run_colluder_ablation
from repro.experiments.fig1213_termination import simulate

SEEDS = (7, 1234, 987654)


@pytest.mark.parametrize("seed", SEEDS)
class TestShapesAcrossSeeds:
    def test_fig7_verification_dominates(self, seed):
        result = fig07_accuracy_vs_workers.run(seed, review_count=80, max_workers=11)
        for row in result.rows:
            assert row["verification"] >= row["half_voting"] - 0.05
        assert result.rows[-1]["verification"] > result.rows[0]["verification"] - 0.02

    def test_fig8_verification_meets_requirement(self, seed):
        result = fig08_accuracy_vs_required.run(
            seed, review_count=80, c_min=0.7, c_max=0.9, c_step=0.1
        )
        for row in result.rows:
            assert row["verification"] >= row["required_accuracy"] - 0.05

    def test_fig15_error_shrinks_with_rate(self, seed):
        result = fig15_sampling_worker_accuracy.run(seed, worker_sample=80)
        errors = result.column("average_error")
        assert errors[0] > errors[-1]
        assert errors[-1] == 0.0

    def test_termination_saves_workers(self, seed):
        cells = simulate(seed, review_count=40, c_values=(0.8,))
        for cell in cells:
            assert cell.mean_answers_used <= cell.predicted_workers

    def test_colluders_break_voting_not_verification(self, seed):
        result = run_colluder_ablation(
            seed, review_count=50, fractions=(0.0, 0.3)
        )
        clean, attacked = result.rows
        assert attacked["majority_voting"] < clean["majority_voting"]
        assert attacked["verification"] > attacked["majority_voting"]
