"""Tests for the handle-based query lifecycle service (DESIGN.md §7).

Covers the QueryHandle state machine, per-tenant admission control
(budget caps + weighted-priority slot allocation), cancellation charge
semantics, standing queries, and the blocking facade wrappers' equivalence
to the service path.
"""

from __future__ import annotations

import pytest

from repro.amt.market import SimulatedMarket
from repro.engine.query import Query
from repro.engine.scheduler import BatchSink, HITScheduler
from repro.engine.service import (
    AdmissionRejected,
    QueryCancelled,
    QueryIntake,
    QueryState,
    TenantPolicy,
)
from repro.it.images import generate_images
from repro.system import CDAS
from repro.tsa.app import movie_query
from repro.tsa.stream import TweetStream
from repro.tsa.tweets import generate_tweets


def _cdas(small_pool, seed=41) -> CDAS:
    return CDAS.with_default_jobs(SimulatedMarket(small_pool, seed=seed), seed=seed)


def _tsa_inputs(movies=("alpha", "beta"), per_movie=18, seed=5, workers=5):
    tweets = generate_tweets(list(movies), per_movie=per_movie, seed=seed)
    gold = generate_tweets(["gold-movie"], per_movie=10, seed=seed + 1)
    return {"tweets": tweets, "gold_tweets": gold, "worker_count": workers}


class TestLifecycle:
    def test_submit_returns_queued_handle_immediately(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=2)
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        assert handle.state is QueryState.QUEUED
        assert not handle.done
        # Eager planning/validation, but nothing published or charged yet.
        assert handle.spend == 0.0
        assert service.engine.market.published_hits == 0

    def test_states_are_monotone_to_done(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=2)
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        order = [
            QueryState.QUEUED, QueryState.ADMITTED,
            QueryState.RUNNING, QueryState.DONE,
        ]
        seen = [handle.state]
        while service.step():
            if handle.state is not seen[-1]:
                seen.append(handle.state)
        assert seen == [s for s in order if s in seen]
        assert seen[-1] is QueryState.DONE
        result = handle.result()
        assert result.report.subject == "alpha"
        assert len(result.records) == 18

    def test_result_pumps_the_service(self, small_pool):
        service = _cdas(small_pool).service()
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        # No explicit stepping: result() drives the pump itself.
        result = handle.result()
        assert handle.state is QueryState.DONE
        assert len(result.records) == 18
        # Idempotent once terminal.
        assert handle.result() is result

    def test_result_timeout_expires(self, small_pool):
        service = _cdas(small_pool).service()
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.0)

    def test_validation_failures_raise_before_anything_runs(self, small_pool):
        service = _cdas(small_pool).service()
        with pytest.raises(KeyError):
            service.submit("ghost", movie_query("alpha", 0.9))
        with pytest.raises(ValueError, match="gold_tweets"):
            service.submit("twitter-sentiment", movie_query("alpha", 0.9))
        with pytest.raises(ValueError, match="matched no tweets"):
            service.submit(
                "twitter-sentiment", movie_query("nomatch", 0.9), **_tsa_inputs()
            )
        assert service.engine.market.published_hits == 0
        assert service.engine.market.ledger.total_cost == 0.0

    def test_submit_while_running(self, small_pool):
        """The service accepts new queries after the pump has started."""
        service = _cdas(small_pool).service(max_in_flight=2)
        first = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        for _ in range(12):
            assert service.step()
        assert first.state is QueryState.RUNNING
        second = service.submit(
            "twitter-sentiment", movie_query("beta", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        assert second.state is QueryState.QUEUED
        service.run_until_idle()
        assert first.state is QueryState.DONE
        assert second.state is QueryState.DONE
        assert second.result().report.subject == "beta"


class TestProgress:
    def test_progress_counts_and_estimate(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=2)
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        mid_flight_estimates = 0
        while service.step():
            progress = handle.progress()
            if progress.hits_in_flight and progress.accuracy_estimate is not None:
                mid_flight_estimates += 1
        # Live aggregators produced estimates while HITs were collecting.
        assert mid_flight_estimates > 0
        final = handle.progress()
        assert final.items_answered == 18
        assert final.items_finalized == 18
        assert final.hits_completed == 3
        assert final.hits_in_flight == 0
        assert 0.0 < final.accuracy_estimate <= 1.0
        assert final.spend == pytest.approx(service.engine.market.ledger.total_cost)

    def test_progress_is_monotone(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=2)
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        last = handle.progress()
        while service.step():
            current = handle.progress()
            assert current.items_answered >= last.items_answered
            assert current.items_finalized >= last.items_finalized
            assert current.hits_completed >= last.hits_completed
            assert current.spend >= last.spend
            last = current


class TestCancellation:
    def test_cancel_before_publish_costs_nothing(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=1)
        first = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        second = service.submit(
            "twitter-sentiment", movie_query("beta", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        assert second.cancel()
        assert second.state is QueryState.CANCELLED
        assert second.spend == 0.0
        service.run_until_idle()
        # The cancelled query never reached the market: every published HIT
        # (and every charged cent) belongs to the survivor.
        assert second.spend == 0.0
        assert first.spend == pytest.approx(
            service.engine.market.ledger.total_cost
        )
        with pytest.raises(QueryCancelled):
            second.result()
        # cancel() is idempotent and reports the no-op.
        assert not second.cancel()

    def test_cancel_mid_flight_stops_charges(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=2)
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs(movies=("alpha",), per_movie=30)
        )
        while handle.progress().spend == 0.0:
            assert service.step()
        assert handle.state is QueryState.RUNNING
        spend_at_cancel = handle.spend
        cancelled_before = service.engine.market.ledger.cancelled_assignments
        assert handle.cancel()
        assert handle.state is QueryState.CANCELLED
        # The backend forfeited the outstanding assignments...
        assert (
            service.engine.market.ledger.cancelled_assignments > cancelled_before
        )
        # ...and pumping on collects (and charges) nothing further for it.
        service.run_until_idle()
        assert handle.spend == spend_at_cancel
        assert service.engine.market.ledger.total_cost == pytest.approx(
            spend_at_cancel
        )
        # Cancelled HITs released their slots: the scheduler is fully idle.
        assert service.scheduler.in_flight == 0

    def test_cancel_frees_slots_for_other_queries(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=1)
        hog = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs(movies=("alpha",), per_movie=30)
        )
        other = service.submit(
            "twitter-sentiment", movie_query("beta", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        for _ in range(3):
            service.step()
        hog.cancel()
        service.run_until_idle()
        assert other.state is QueryState.DONE
        assert len(other.result().records) == 18


class TestAdmissionControl:
    def test_submit_rejected_when_tenant_budget_exhausted(self, small_pool):
        cdas = _cdas(small_pool)
        service = cdas.service(max_in_flight=2)
        service.register_tenant("acme", budget_cap=0.05)
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            tenant="acme", batch_size=6, **_tsa_inputs()
        )
        service.run_until_idle()
        assert service.tenant_spend("acme") >= 0.05
        with pytest.raises(AdmissionRejected, match="acme"):
            service.submit(
                "twitter-sentiment", movie_query("beta", 0.9),
                tenant="acme", batch_size=6, **_tsa_inputs()
            )
        # Another tenant is unaffected by acme's exhaustion.
        ok = service.submit(
            "twitter-sentiment", movie_query("beta", 0.9),
            tenant="fresh", batch_size=6, **_tsa_inputs()
        )
        service.run_until_idle()
        assert ok.state is QueryState.DONE
        # The first query stopped early: its remaining batches were dropped.
        assert handle.state is QueryState.DONE
        assert handle.progress().budget_exhausted

    def test_queued_query_fails_when_cap_fills_before_admission(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=1)
        service.register_tenant("acme", budget_cap=0.03)
        first = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            tenant="acme", batch_size=6, **_tsa_inputs()
        )
        second = service.submit(
            "twitter-sentiment", movie_query("beta", 0.9),
            tenant="acme", batch_size=6, **_tsa_inputs()
        )
        service.run_until_idle()
        assert second.state is QueryState.FAILED
        with pytest.raises(AdmissionRejected):
            second.result()
        assert second.spend == 0.0
        assert first.done

    def test_per_query_budget_stops_further_batches(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=1)
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            budget=0.08, batch_size=6,
            **_tsa_inputs(movies=("alpha",), per_movie=30)
        )
        result = handle.result()
        progress = handle.progress()
        assert progress.budget_exhausted
        # 30 tweets / batch 6 = 5 batches; the budget admitted fewer.
        assert 0 < progress.hits_completed < 5
        assert len(result.records) == progress.items_finalized
        # Spend overshoots the cap by at most the one in-flight HIT.
        assert progress.spend >= 0.08

    def test_budget_spent_on_last_batch_is_not_flagged_exhausted(self, small_pool):
        """Crossing the budget while the final batch collects is just
        completion — the flag means remaining batches were dropped."""
        service = _cdas(small_pool).service(max_in_flight=1)
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            budget=0.20, batch_size=6, **_tsa_inputs()
        )
        # A second query keeps the pump granting after the first drains.
        service.submit(
            "twitter-sentiment", movie_query("beta", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        result = handle.result()
        progress = handle.progress()
        assert len(result.records) == 18  # all 3 batches ran
        assert progress.spend >= 0.20
        assert not progress.budget_exhausted

    def test_equal_priorities_grant_round_robin(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=1)
        for movie in ("alpha", "beta"):
            service.submit(
                "twitter-sentiment", movie_query(movie, 0.9),
                batch_size=6, **_tsa_inputs()
            )
        service.run_until_idle()
        # 3 batches each, one tenant, equal priority: strict alternation
        # (the scheduler's historical multi-source round-robin).
        assert [seq for _, seq in service.admission.grant_log] == [
            0, 1, 0, 1, 0, 1
        ]

    def test_weighted_priorities_skew_grants(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=1)
        service.register_tenant("heavy", priority=3.0)
        service.register_tenant("light", priority=1.0)
        service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9), tenant="heavy",
            batch_size=3, **_tsa_inputs(movies=("alpha",), per_movie=24)
        )
        service.submit(
            "twitter-sentiment", movie_query("beta", 0.9), tenant="light",
            batch_size=3, **_tsa_inputs(movies=("beta",), per_movie=24)
        )
        service.run_until_idle()
        first_eight = [t for t, _ in service.admission.grant_log[:8]]
        assert first_eight.count("heavy") == 6
        assert first_eight.count("light") == 2

    def test_fifo_allocation_serves_in_submission_order(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=1, allocation="fifo")
        for movie in ("alpha", "beta"):
            service.submit(
                "twitter-sentiment", movie_query(movie, 0.9),
                batch_size=6, **_tsa_inputs()
            )
        service.run_until_idle()
        # FIFO: the first query monopolises slots until it runs dry.
        assert [seq for _, seq in service.admission.grant_log] == [
            0, 0, 0, 1, 1, 1
        ]

    def test_tenant_policy_validation(self):
        with pytest.raises(ValueError, match="priority"):
            TenantPolicy(name="x", priority=0.0)
        with pytest.raises(ValueError, match="budget cap"):
            TenantPolicy(name="x", budget_cap=-1.0)

    def test_per_query_priority_and_budget_validated_at_submit(self, small_pool):
        service = _cdas(small_pool).service()
        for bad_priority in (0.0, -2.0):
            with pytest.raises(ValueError, match="priority"):
                service.submit(
                    "twitter-sentiment", movie_query("alpha", 0.9),
                    priority=bad_priority, **_tsa_inputs()
                )
        with pytest.raises(ValueError, match="budget"):
            service.submit(
                "twitter-sentiment", movie_query("alpha", 0.9),
                budget=-0.01, **_tsa_inputs()
            )
        assert service.engine.market.published_hits == 0


class TestMultiTenantIntegration:
    def test_two_tenants_three_queries_interleave_cancel_one(self, small_pool):
        """The acceptance scenario: ≥3 queries from 2 tenants on one
        running service — interleaved RUNNING states, monotone progress,
        one mid-flight cancellation with no further spend."""
        cdas = _cdas(small_pool)
        service = cdas.service(max_in_flight=3)
        service.register_tenant("acme", priority=2.0)
        service.register_tenant("globex", priority=1.0)
        images = generate_images(per_subject=1, seed=3)
        gold_images = generate_images(per_subject=1, seed=4)
        h_alpha = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9), tenant="acme",
            batch_size=6, **_tsa_inputs(movies=("alpha",), per_movie=30)
        )
        h_beta = service.submit(
            "twitter-sentiment", movie_query("beta", 0.9), tenant="globex",
            batch_size=6, **_tsa_inputs(movies=("beta",), per_movie=30)
        )
        h_images = service.submit(
            "image-tagging", movie_query("img", 0.9), tenant="globex",
            images=images, gold_images=gold_images, worker_count=5,
        )
        handles = (h_alpha, h_beta, h_images)
        last = {h: h.progress() for h in handles}
        concurrent_running = 0
        cancelled_spend = None
        while service.step():
            running = [h for h in handles if h.state is QueryState.RUNNING]
            if len(running) >= 2:
                concurrent_running += 1
            for h in handles:
                current = h.progress()
                assert current.items_answered >= last[h].items_answered
                assert current.spend >= last[h].spend
                last[h] = current
            if (
                cancelled_spend is None
                and h_beta.state is QueryState.RUNNING
                and h_beta.spend > 0
            ):
                h_beta.cancel()
                cancelled_spend = h_beta.spend
        # Queries from both tenants were genuinely in flight together.
        assert concurrent_running > 0
        assert cancelled_spend is not None
        assert h_beta.state is QueryState.CANCELLED
        assert h_beta.spend == cancelled_spend  # nothing further charged
        assert h_alpha.state is QueryState.DONE
        assert h_images.state is QueryState.DONE
        assert len(h_alpha.result().records) == 30
        assert h_images.result().decision_accuracy > 0.5
        # Ledger consistency: every charged cent is attributed to a handle.
        assert cdas.total_cost == pytest.approx(
            sum(h.spend for h in handles)
        )
        # Both tenants appear in the grant interleaving before the cancel.
        tenants_granted = {t for t, _ in service.admission.grant_log}
        assert tenants_granted == {"acme", "globex"}


class TestStandingQuery:
    def _stream(self, per_window=8, window_count=3, unit_seconds=60.0):
        import dataclasses

        tweets = generate_tweets(["kungfu"], per_movie=per_window * window_count, seed=11)
        spaced = []
        for i, tweet in enumerate(tweets):
            window_index, slot = divmod(i, per_window)
            spaced.append(
                dataclasses.replace(
                    tweet, timestamp=window_index * unit_seconds + slot
                )
            )
        return TweetStream.from_corpus(spaced, unit_seconds=unit_seconds)

    def test_standing_query_spans_windows_through_one_handle(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=2)
        stream = self._stream()
        gold = generate_tweets(["gold-movie"], per_movie=10, seed=12)
        query = movie_query("kungfu", 0.9, window=1)
        handle = service.submit(
            "twitter-sentiment", query,
            stream=stream, windows=3, gold_tweets=gold,
            worker_count=5, batch_size=4,
        )
        result = handle.result()
        assert handle.state is QueryState.DONE
        # 3 windows × 8 tweets, 2 HITs per window at batch_size=4.
        assert len(result.records) == 24
        assert handle.progress().hits_completed == 6

    def test_standing_query_follows_stream_to_the_end(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=2)
        stream = self._stream(window_count=2)
        gold = generate_tweets(["gold-movie"], per_movie=10, seed=12)
        handle = service.submit(
            "twitter-sentiment", movie_query("kungfu", 0.9, window=1),
            stream=stream, windows=None, gold_tweets=gold,
            worker_count=5, batch_size=4,
        )
        result = handle.result()
        assert len(result.records) == 16

    def test_standing_query_requires_stream(self, small_pool):
        service = _cdas(small_pool).service()
        gold = generate_tweets(["gold-movie"], per_movie=10, seed=12)
        with pytest.raises(ValueError, match="stream"):
            service.submit(
                "twitter-sentiment", movie_query("kungfu", 0.9),
                windows=2, gold_tweets=gold,
            )


class TestBatchSinkProtocol:
    def test_scheduler_and_intake_both_satisfy_it(self, small_pool):
        from repro.engine.engine import CrowdsourcingEngine

        engine = CrowdsourcingEngine(SimulatedMarket(small_pool, seed=1))
        assert isinstance(HITScheduler(engine), BatchSink)
        assert isinstance(QueryIntake(), BatchSink)

    def test_intake_records_without_running(self):
        intake = QueryIntake()
        group = intake.add_batches(
            iter([[]]), required_accuracy=0.9
        )
        assert group.sessions == []
        assert len(intake.sources) == 1


class TestFacadeWrappers:
    def test_submit_matches_service_path(self, small_pool):
        """The blocking wrapper is literally the service run to idle."""
        inputs = _tsa_inputs()
        query = movie_query("alpha", 0.9)

        blocking = _cdas(small_pool).submit("twitter-sentiment", query, **inputs)

        cdas = _cdas(small_pool)
        service = cdas.service(max_in_flight=1, track_trajectories=False)
        handle = service.submit("twitter-sentiment", query, **inputs)
        service.run_until_idle()
        via_service = handle.result()

        assert blocking.report == via_service.report
        assert [h.hit_id for h in blocking.hit_results] == [
            h.hit_id for h in via_service.hit_results
        ]
        assert [h.cost for h in blocking.hit_results] == [
            h.cost for h in via_service.hit_results
        ]

    def test_runner_only_jobs_still_submit(self, small_pool):
        from repro.engine.jobs import JobSpec
        from repro.engine.templates import QueryTemplate

        cdas = _cdas(small_pool)
        spec = JobSpec(
            name="runner-only",
            template=QueryTemplate(
                job_name="runner-only", instructions="i",
                item_label="Item", prompt="p",
            ),
            computer_tasks=("t",),
            human_tasks=("h",),
        )
        cdas.register_job(spec, runner=lambda engine, plan, inputs: "ran")
        out = cdas.submit(
            "runner-only",
            Query(keywords=("x",), required_accuracy=0.9, domain=("a", "b")),
        )
        assert out == "ran"
        # ...but the service refuses them with a pointed error.
        with pytest.raises(ValueError, match="submitter"):
            cdas.service().submit(
                "runner-only",
                Query(keywords=("x",), required_accuracy=0.9, domain=("a", "b")),
            )

    def test_explicit_runner_beats_submitter_on_blocking_submit(self, small_pool):
        """A job registered with BOTH keeps its explicit runner on
        submit() (historical precedence); the submitter serves the
        service/submit_many surface."""
        from repro.engine.jobs import JobSpec
        from repro.engine.templates import QueryTemplate

        cdas = _cdas(small_pool)
        spec = JobSpec(
            name="both",
            template=QueryTemplate(
                job_name="both", instructions="i",
                item_label="Item", prompt="p",
            ),
            computer_tasks=("t",),
            human_tasks=("h",),
        )

        def submitter(engine, sink, plan, inputs):
            sink.add_batches(iter(()), required_accuracy=0.9)
            return lambda: "via-submitter"

        cdas.register_job(
            spec,
            runner=lambda engine, plan, inputs: "via-runner",
            submitter=submitter,
        )
        query = Query(keywords=("x",), required_accuracy=0.9, domain=("a", "b"))
        assert cdas.submit("both", query) == "via-runner"
        handle = cdas.service().submit("both", query)
        assert handle.result() == "via-submitter"


class TestSlowBackendBlocking:
    """The sync surfaces sleep through dormant spells instead of spinning
    (ISSUE-3 satellite: result(timeout) hot-spin fix)."""

    DELAY = 0.02

    def _slow_service(self, small_pool, seed=41, delay=DELAY):
        from repro.amt.slow import SlowBackend

        market = SlowBackend(SimulatedMarket(small_pool, seed=seed), delay=delay)
        cdas = CDAS.with_default_jobs(market, seed=seed)
        return cdas.service(max_in_flight=2)

    def test_result_sleeps_instead_of_spinning(self, small_pool):
        service = self._slow_service(small_pool)
        steps = 0
        original_step = service.step

        def counting_step():
            nonlocal steps
            steps += 1
            return original_step()

        service.step = counting_step
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs(workers=3)
        )
        result = handle.result()
        assert len(result.records) == 18
        # 3 batches × 3 workers = 9 events arriving ~DELAY apart; a
        # spinning result() would re-enter step() thousands of times
        # while dormant, a sleeping one a few times per event.
        assert steps <= 8 * 9

    def test_result_timeout_fires_while_dormant(self, small_pool):
        service = self._slow_service(small_pool, delay=0.2)
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs(workers=3)
        )
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.05)
        # The query is not lost: it survives the timeout and completes.
        assert not handle.done

    def test_run_until_idle_sleeps_through_dormancy(self, small_pool):
        service = self._slow_service(small_pool)
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs(workers=3)
        )
        service.run_until_idle()
        assert handle.done
        assert len(handle.result().records) == 18


class TestProgressCaching:
    """Sealed sessions' progress is computed once, not re-scanned per poll
    (ISSUE-3 satellite: O(sessions × records) progress fix)."""

    def test_sealed_sessions_cached_and_reused(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=2)
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        result = handle.result()
        assert len(result.records) == 18
        fresh = handle.progress()  # populates the per-session cache
        record = handle._record
        assert len(record._sealed_progress) == fresh.hits_completed > 0
        # Repeated polls reproduce the same observation...
        assert handle.progress() == fresh
        # ...and actually read the cache: poisoning one sealed entry
        # shows up in the next snapshot (the records are NOT re-walked).
        key = next(iter(record._sealed_progress))
        answered, finalized, confidences = record._sealed_progress[key]
        record._sealed_progress[key] = (answered, finalized + 1000, confidences)
        assert handle.progress().items_finalized == fresh.items_finalized + 1000

    def test_cache_only_covers_sealed_sessions(self, small_pool):
        service = _cdas(small_pool).service(max_in_flight=1)
        handle = service.submit(
            "twitter-sentiment", movie_query("alpha", 0.9),
            batch_size=6, **_tsa_inputs()
        )
        record = handle._record
        while not handle.done:
            if not service.step():
                break
            progress = handle.progress()
            # Never more cache entries than sealed sessions, and live
            # counters stay monotone while the cache fills.
            sealed = sum(1 for s in record.sessions if s.result is not None)
            assert len(record._sealed_progress) <= sealed
            assert progress.hits_completed == sealed
