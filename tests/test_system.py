"""Tests for the CDAS facade (Figure 2 wiring)."""

from __future__ import annotations

import pytest

from repro.amt.market import SimulatedMarket
from repro.engine.jobs import JobSpec
from repro.engine.query import Query
from repro.engine.templates import QueryTemplate
from repro.it.images import generate_images
from repro.system import CDAS
from repro.tsa.app import movie_query
from repro.tsa.tweets import generate_tweets, tweet_to_question


@pytest.fixture()
def system(small_pool) -> CDAS:
    market = SimulatedMarket(small_pool, seed=91)
    return CDAS.with_default_jobs(market, seed=91)


class TestRegistration:
    def test_default_jobs_present(self, system):
        assert set(system.jobs) == {"twitter-sentiment", "image-tagging"}

    def test_custom_job_registers(self, system):
        spec = JobSpec(
            name="custom",
            template=QueryTemplate(
                job_name="custom", instructions="i", item_label="Item", prompt="p"
            ),
            computer_tasks=("t",),
            human_tasks=("h",),
        )
        calls = []

        def runner(engine, plan, inputs):
            calls.append((plan.job_name, inputs))
            return "done"

        system.register_job(spec, runner)
        out = system.submit(
            "custom",
            Query(keywords=("x",), required_accuracy=0.9, domain=("a", "b")),
            extra=1,
        )
        assert out == "done"
        assert calls == [("custom", {"extra": 1})]

    def test_duplicate_rejected(self, system):
        from repro.tsa.app import build_tsa_spec

        with pytest.raises(ValueError):
            system.register_job(build_tsa_spec(), lambda e, p, i: None)

    def test_unknown_job_rejected(self, system):
        with pytest.raises(KeyError):
            system.submit(
                "ghost", Query(keywords=("x",), required_accuracy=0.9, domain=("a", "b"))
            )


class TestEndToEnd:
    def test_tsa_through_facade(self, system):
        gold = generate_tweets(["Inception"], per_movie=25, seed=92)
        system.calibrate([tweet_to_question(t) for t in gold[:15]])
        tweets = generate_tweets(["Rio"], per_movie=10, seed=93)
        result = system.submit(
            "twitter-sentiment",
            movie_query("Rio", 0.85),
            gold_tweets=gold[15:],
            tweets=tweets,
            worker_count=5,
            batch_size=10,
        )
        assert len(result.records) == 10
        assert system.total_cost > 0

    def test_it_through_facade(self, system):
        images = generate_images(per_subject=1, seed=94)[:3]
        gold_images = generate_images(per_subject=1, seed=95)
        result = system.submit(
            "image-tagging",
            Query(
                keywords=("images",),
                required_accuracy=0.9,
                domain=("yes", "no"),
            ),
            images=images,
            gold_images=gold_images,
            worker_count=3,
        )
        assert result.decision_accuracy > 0.5

    def test_missing_required_inputs(self, system):
        with pytest.raises(ValueError, match="gold_tweets"):
            system.submit("twitter-sentiment", movie_query("Rio", 0.85))
        with pytest.raises(ValueError, match="images"):
            system.submit(
                "image-tagging",
                Query(keywords=("x",), required_accuracy=0.9, domain=("yes", "no")),
            )
