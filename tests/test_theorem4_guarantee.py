"""Statistical validation of Theorem 4: prediction + verification ≥ C.

Theorem 4 promises: if the worker count satisfies ``E[P_{⌈n/2⌉}] ≥ C``,
probability-based verification returns the true answer with probability at
least ``C``.  We validate it Monte-Carlo style on homogeneous and
heterogeneous populations with *oracle* accuracies (isolating the theorem
from estimation error, which Figures 15/16 cover separately).
"""

from __future__ import annotations

import pytest

from repro.core.domain import AnswerDomain
from repro.core.prediction import refined_worker_count
from repro.core.types import WorkerAnswer
from repro.core.verification import ProbabilisticVerification
from repro.util.rng import substream

LABELS = ("a", "b", "c")
TRIALS = 600


def _simulate_accuracy(mu: float, c: float, seed: int, heterogeneous: bool) -> float:
    """Empirical accuracy of verification at n = g(C) over many questions."""
    n = refined_worker_count(c, mu)
    rng = substream(seed, f"thm4:{mu}:{c}:{heterogeneous}")
    domain = AnswerDomain.closed(LABELS)
    verifier = ProbabilisticVerification(domain=domain)
    correct = 0
    for _ in range(TRIALS):
        truth = LABELS[int(rng.integers(3))]
        observation = []
        for w in range(n):
            if heterogeneous:
                # Worker accuracies spread ±0.15 around mu (clipped), mean mu.
                accuracy = float(min(0.98, max(0.02, mu + rng.uniform(-0.15, 0.15))))
            else:
                accuracy = mu
            if rng.random() < accuracy:
                answer = truth
            else:
                wrong = [lab for lab in LABELS if lab != truth]
                answer = wrong[int(rng.integers(2))]
            observation.append(WorkerAnswer(f"w{w}", answer, accuracy))
        verdict = verifier.verify(observation)
        correct += verdict.answer == truth
    return correct / TRIALS


#: Three-sigma slack for a Bernoulli mean over TRIALS samples at p ≈ C.
def _slack(c: float) -> float:
    return 3.0 * (c * (1 - c) / TRIALS) ** 0.5


class TestTheorem4:
    @pytest.mark.parametrize("mu", [0.6, 0.7, 0.8])
    @pytest.mark.parametrize("c", [0.7, 0.85, 0.95])
    def test_homogeneous_population_meets_requirement(self, mu, c):
        accuracy = _simulate_accuracy(mu, c, seed=2012, heterogeneous=False)
        assert accuracy >= c - _slack(c)

    @pytest.mark.parametrize("c", [0.75, 0.9])
    def test_heterogeneous_population_meets_requirement(self, c):
        accuracy = _simulate_accuracy(0.7, c, seed=2013, heterogeneous=True)
        assert accuracy >= c - _slack(c)

    def test_verification_beats_required_with_margin_at_high_n(self):
        # At C = 0.95 / mu = 0.7 the prediction hires ~49 workers; the
        # verifier typically lands clearly above the floor.
        accuracy = _simulate_accuracy(0.7, 0.95, seed=2014, heterogeneous=False)
        assert accuracy >= 0.95
