"""Tests for per-topic worker skills (§3.3 cross-job accuracy variation)."""

from __future__ import annotations

import pytest

from repro.amt.hit import Question
from repro.amt.pool import PoolConfig, WorkerPool
from repro.amt.worker import WorkerProfile, effective_accuracy
from repro.experiments.ablations import run_cross_job_ablation

SEED = 2012


def _question(topic: str, difficulty: float = 0.0) -> Question:
    return Question(
        question_id="q",
        options=("a", "b", "c"),
        truth="a",
        difficulty=difficulty,
        topic=topic,
    )


class TestSkillDelta:
    def _profile(self) -> WorkerProfile:
        return WorkerProfile(
            "w", 0.7, 0.9, skills=(("sentiment", 0.15), ("imaging", -0.2))
        )

    def test_known_topic_applies_offset(self):
        p = self._profile()
        assert p.topic_accuracy("sentiment") == pytest.approx(0.85)
        assert p.topic_accuracy("imaging") == pytest.approx(0.5)

    def test_unknown_topic_is_base(self):
        assert self._profile().topic_accuracy("general") == pytest.approx(0.7)

    def test_clipping(self):
        high = WorkerProfile("w", 0.95, 0.9, skills=(("t", 0.2),))
        low = WorkerProfile("w2", 0.1, 0.9, skills=(("t", -0.5),))
        assert high.topic_accuracy("t") == 1.0
        assert low.topic_accuracy("t") == 0.0

    def test_duplicate_topics_rejected(self):
        with pytest.raises(ValueError, match="duplicate topics"):
            WorkerProfile("w", 0.7, 0.9, skills=(("t", 0.1), ("t", 0.2)))

    def test_effective_accuracy_uses_topic(self):
        p = self._profile()
        assert effective_accuracy(p, _question("sentiment")) == pytest.approx(0.85)
        assert effective_accuracy(p, _question("imaging")) == pytest.approx(0.5)

    def test_difficulty_composes_with_topic(self):
        p = self._profile()
        # d=0.5 on a 3-option sentiment question: 0.5*0.85 + 0.5/3.
        assert effective_accuracy(p, _question("sentiment", 0.5)) == pytest.approx(
            0.5 * 0.85 + 0.5 / 3
        )


class TestPoolSkills:
    def test_skills_generated_when_configured(self):
        pool = WorkerPool.from_config(
            PoolConfig(size=60, skill_topics=("a", "b"), skill_sigma=0.1), seed=SEED
        )
        reliable = [p for p in pool.profiles if p.behaviour == "reliable"]
        assert all(len(p.skills) == 2 for p in reliable)
        deltas = [d for p in reliable for _, d in p.skills]
        assert any(d > 0 for d in deltas) and any(d < 0 for d in deltas)

    def test_no_skills_by_default(self):
        pool = WorkerPool.from_config(PoolConfig(size=30), seed=SEED)
        assert all(p.skills == () for p in pool.profiles)

    def test_validation(self):
        with pytest.raises(ValueError, match="sigma"):
            PoolConfig(skill_sigma=-0.1)
        with pytest.raises(ValueError, match="duplicate"):
            PoolConfig(skill_topics=("a", "a"))


class TestCrossJobAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_cross_job_ablation(SEED, review_count=80)

    def test_same_job_gold_wins(self, result):
        by_source = {
            row["accuracy_source"]: row["verification_accuracy"]
            for row in result.rows
        }
        assert by_source["same_job_gold"] >= by_source["cross_job_gold"]
        assert by_source["same_job_gold"] > by_source["approval_rate"]

    def test_three_sources(self, result):
        assert len(result.rows) == 3
