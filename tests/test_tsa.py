"""Tests for the TSA application: corpus, stream, end-to-end job."""

from __future__ import annotations

import pytest

from repro.amt.market import SimulatedMarket
from repro.engine.engine import CrowdsourcingEngine
from repro.tsa.app import TSAJob, build_tsa_spec, movie_query
from repro.tsa.lexicon import SENTIMENTS
from repro.tsa.stream import TweetStream
from repro.tsa.tweets import (
    TweetGeneratorConfig,
    generate_tweets,
    tweet_to_question,
)


class TestGenerateTweets:
    def test_counts_and_ids_unique(self):
        tweets = generate_tweets(["Thor", "Rio"], per_movie=30, seed=1)
        assert len(tweets) == 60
        assert len({t.tweet_id for t in tweets}) == 60

    def test_deterministic(self):
        a = generate_tweets(["Thor"], per_movie=20, seed=5)
        b = generate_tweets(["Thor"], per_movie=20, seed=5)
        assert [t.text for t in a] == [t.text for t in b]

    def test_movie_name_in_text(self):
        tweets = generate_tweets(["Thor"], per_movie=50, seed=2)
        assert all("Thor" in t.text for t in tweets)

    def test_sentiments_valid(self):
        tweets = generate_tweets(["Thor"], per_movie=100, seed=3)
        assert {t.sentiment for t in tweets} <= set(SENTIMENTS)

    def test_sentiment_mix_roughly_matches_weights(self):
        tweets = generate_tweets(
            ["Thor", "Rio", "Hanna", "Paul"], per_movie=250, seed=4
        )
        share_pos = sum(t.sentiment == "positive" for t in tweets) / len(tweets)
        # Plain/ambiguous families use the 60/10/30 prior; contrast and
        # hard are 50/50 pos-neg, so overall positive is ~0.5.
        assert 0.40 <= share_pos <= 0.62

    def test_hard_fraction_controls_difficulty(self):
        easy_cfg = TweetGeneratorConfig(
            plain_fraction=1.0,
            contrast_fraction=0.0,
            hard_fraction=0.0,
            ambiguous_fraction=0.0,
        )
        tweets = generate_tweets(["Thor"], per_movie=50, seed=5, config=easy_cfg)
        assert all(t.difficulty == 0.0 for t in tweets)

    def test_fraction_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            TweetGeneratorConfig(plain_fraction=0.9)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_tweets([], per_movie=5, seed=1)
        with pytest.raises(ValueError):
            generate_tweets(["Thor"], per_movie=0, seed=1)


class TestTweetToQuestion:
    def test_mapping(self):
        tweet = generate_tweets(["Thor"], per_movie=1, seed=6)[0]
        q = tweet_to_question(tweet)
        assert q.question_id == tweet.tweet_id
        assert q.truth == tweet.sentiment
        assert q.options == SENTIMENTS
        assert q.payload == tweet.text


class TestTweetStream:
    def _stream(self) -> TweetStream:
        tweets = generate_tweets(["Thor", "Rio"], per_movie=40, seed=7)
        return TweetStream.from_corpus(tweets, unit_seconds=3600.0)

    def test_sorted_by_time(self):
        stream = self._stream()
        times = [t.timestamp for t in stream.tweets]
        assert times == sorted(times)

    def test_window_filters_keyword_and_time(self):
        stream = self._stream()
        query = movie_query("Thor", 0.9, window=24, timestamp=0.0)
        hits = list(stream.window(query))
        assert hits
        assert all("Thor" in t.text for t in hits)

    def test_narrow_window(self):
        stream = self._stream()
        narrow = movie_query("Thor", 0.9, window=2, timestamp=0.0)
        wide = movie_query("Thor", 0.9, window=24, timestamp=0.0)
        assert len(list(stream.window(narrow))) <= len(list(stream.window(wide)))

    def test_arrival_rate(self):
        stream = self._stream()
        query = movie_query("Thor", 0.9, window=24, timestamp=0.0)
        k = stream.arrival_rate(query)
        assert k == pytest.approx(len(list(stream.window(query))) / 24)

    def test_validation(self):
        with pytest.raises(ValueError):
            TweetStream(tweets=(), unit_seconds=0)


class TestTSAJobEndToEnd:
    def test_full_query(self, small_pool):
        market = SimulatedMarket(small_pool, seed=44)
        engine = CrowdsourcingEngine(market, seed=44)
        gold = generate_tweets(["Inception"], per_movie=25, seed=45)
        engine.calibrate(
            [tweet_to_question(t) for t in gold[:15]], workers_per_hit=15, hits=2
        )
        tweets = generate_tweets(["Thor"], per_movie=30, seed=46)
        stream = TweetStream.from_corpus(tweets)
        job = TSAJob(engine, stream=stream, batch_size=15)
        result = job.run(movie_query("Thor", 0.85), gold_tweets=gold[15:])
        assert result.records
        assert result.accuracy > 0.7
        assert result.cost > 0
        assert result.report.subject == "Thor"
        # Percentages are h-scores over the three labels.
        total = sum(result.report.percentage(s) for s in SENTIMENTS)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_explicit_tweets_bypass_stream(self, small_pool):
        market = SimulatedMarket(small_pool, seed=47)
        engine = CrowdsourcingEngine(market, seed=47)
        gold = generate_tweets(["Inception"], per_movie=20, seed=48)
        tweets = generate_tweets(["Rio"], per_movie=10, seed=49)
        job = TSAJob(engine, batch_size=10)
        result = job.run(
            movie_query("Rio", 0.8),
            gold_tweets=gold,
            tweets=tweets,
            worker_count=5,
        )
        assert len(result.records) == 10
        assert result.workers_per_hit == 5

    def test_no_matches_rejected(self, small_pool):
        market = SimulatedMarket(small_pool, seed=50)
        engine = CrowdsourcingEngine(market, seed=50)
        job = TSAJob(engine, batch_size=10)
        with pytest.raises(ValueError, match="matched no tweets"):
            job.run(
                movie_query("Nonexistent Movie", 0.8),
                gold_tweets=[],
                tweets=generate_tweets(["Rio"], per_movie=5, seed=51),
                worker_count=3,
            )

    def test_spec_shape(self):
        spec = build_tsa_spec()
        assert spec.name == "twitter-sentiment"
        assert spec.template.item_label == "Tweet"
