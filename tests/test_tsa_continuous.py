"""Tests for the §4.3 continuous live view."""

from __future__ import annotations

import pytest

from repro.amt.pool import PoolConfig, WorkerPool
from repro.core.termination import ExpMax
from repro.engine.query import Query
from repro.tsa.continuous import ContinuousTSA
from repro.tsa.stream import TweetStream
from repro.tsa.tweets import Tweet
from repro.util.rng import substream

MINUTE = 60.0


def _stream(seed: int = 1, count: int = 12) -> TweetStream:
    rng = substream(seed, "live-test")
    tweets = []
    for i in range(count):
        sentiment = "positive" if rng.random() < 0.7 else "negative"
        tweets.append(
            Tweet(
                tweet_id=f"t{i:03d}",
                movie="Thor",
                text=f"Thor live tweet {i}",
                sentiment=sentiment,
                difficulty=0.0,
                timestamp=float(rng.uniform(0.0, 10 * MINUTE)),
            )
        )
    return TweetStream.from_corpus(tweets, unit_seconds=MINUTE)


def _query() -> Query:
    return Query(
        keywords=("Thor",),
        required_accuracy=0.9,
        domain=("positive", "neutral", "negative"),
        timestamp=0.0,
        window=12,
        subject="Thor",
    )


def _live(seed: int = 1, strategy=None, workers: int = 5) -> ContinuousTSA:
    pool = WorkerPool.from_config(PoolConfig(size=150), seed=seed)
    return ContinuousTSA(
        pool=pool,
        stream=_stream(seed),
        query=_query(),
        workers_per_tweet=workers,
        worker_accuracy=0.72,
        mean_response_seconds=60.0,
        strategy=strategy,
        seed=seed,
    )


class TestAdvanceTo:
    def test_tweets_become_visible_over_time(self):
        live = _live()
        early = live.advance_to(1 * MINUTE)
        late = live.advance_to(10 * MINUTE)
        assert early.tweets_seen <= late.tweets_seen
        assert late.tweets_seen == 12

    def test_everything_resolves_eventually(self):
        live = _live()
        final = live.advance_to(1000 * MINUTE)
        assert final.tweets_resolved == final.tweets_seen == 12
        assert final.answers_outstanding == 0

    def test_outstanding_decreases_to_zero(self):
        live = _live()
        mid = live.advance_to(5 * MINUTE)
        final = live.advance_to(1000 * MINUTE)
        assert final.answers_outstanding == 0
        assert mid.answers_outstanding >= 0

    def test_monotonicity_enforced(self):
        live = _live()
        live.advance_to(5 * MINUTE)
        with pytest.raises(ValueError, match="monotone"):
            live.advance_to(1 * MINUTE)

    def test_negative_time_rejected(self):
        live = _live()
        with pytest.raises(ValueError, match="negative"):
            live.advance_to(-1.0)


class TestSnapshots:
    def test_report_percentages_reflect_stream_mix(self):
        live = _live()
        final = live.advance_to(1000 * MINUTE)
        # ~70% positive ground truth with accurate-ish workers.
        assert final.report.percentage("positive") > 0.5

    def test_supporting_tweets_newest_first(self):
        live = _live()
        final = live.advance_to(1000 * MINUTE)
        for texts in final.supporting_tweets.values():
            assert isinstance(texts, tuple)
        # Every resolved tweet appears under exactly one label.
        total = sum(len(v) for v in final.supporting_tweets.values())
        assert total == final.tweets_seen

    def test_render_contains_counts(self):
        live = _live()
        snap = live.advance_to(3 * MINUTE)
        text = snap.render()
        assert "tweets seen" in text
        assert "Thor" in text

    def test_empty_prefix_renders(self):
        live = _live()
        snap = live.advance_to(0.0)
        assert snap.tweets_resolved == 0
        assert snap.render()


class TestEarlyAcceptance:
    def test_strategy_accepts_before_all_answers(self):
        live = _live(strategy=ExpMax(), workers=15)
        final = live.advance_to(1000 * MINUTE)
        # With a stopping rule, at least one tweet froze its verdict with
        # answers still pending (which were then treated as cancelled).
        delivered = sum(lq.cursor for lq in live._questions)
        scheduled = sum(len(lq.arrivals) for lq in live._questions)
        assert delivered < scheduled
        assert final.tweets_resolved == 12

    def test_timeline_checkpoints(self):
        live = _live()
        snaps = live.timeline([MINUTE, 5 * MINUTE, 20 * MINUTE])
        assert [s.elapsed_seconds for s in snaps] == [60.0, 300.0, 1200.0]
        with pytest.raises(ValueError, match="non-decreasing"):
            _live().timeline([5 * MINUTE, MINUTE])


class TestTimeInvariance:
    def test_many_small_steps_equal_one_big_step(self):
        """Advancing in any sequence of increments must land in the same
        state as one jump to the final time — the event timeline is fixed
        at construction and delivery is purely time-driven."""
        stepped = _live(seed=9)
        for t in (30.0, 90.0, 200.0, 500.0, 1500.0, 4000.0):
            snap_stepped = stepped.advance_to(t)
        jumped = _live(seed=9)
        snap_jumped = jumped.advance_to(4000.0)
        assert snap_stepped.tweets_seen == snap_jumped.tweets_seen
        assert snap_stepped.tweets_resolved == snap_jumped.tweets_resolved
        assert snap_stepped.answers_outstanding == snap_jumped.answers_outstanding
        for label in ("positive", "neutral", "negative"):
            assert snap_stepped.report.percentage(label) == pytest.approx(
                snap_jumped.report.percentage(label)
            )

    def test_stepping_with_strategy_matches_jump(self):
        from repro.core.termination import ExpMax

        stepped = _live(seed=10, strategy=ExpMax(), workers=9)
        for t in (60.0, 120.0, 600.0, 5000.0):
            snap_stepped = stepped.advance_to(t)
        jumped = _live(seed=10, strategy=ExpMax(), workers=9)
        snap_jumped = jumped.advance_to(5000.0)
        assert snap_stepped.tweets_resolved == snap_jumped.tweets_resolved
        for label in ("positive", "neutral", "negative"):
            assert snap_stepped.report.percentage(label) == pytest.approx(
                snap_jumped.report.percentage(label)
            )


class TestValidation:
    def test_bad_construction(self):
        pool = WorkerPool.from_config(PoolConfig(size=50), seed=1)
        with pytest.raises(ValueError):
            ContinuousTSA(pool, _stream(), _query(), workers_per_tweet=0)
        with pytest.raises(ValueError):
            ContinuousTSA(pool, _stream(), _query(), worker_accuracy=1.0)
        with pytest.raises(ValueError):
            ContinuousTSA(pool, _stream(), _query(), mean_response_seconds=0)
