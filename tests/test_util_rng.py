"""Tests for repro.util.rng: determinism and substream independence."""

from __future__ import annotations

import pytest

from repro.util.rng import derive_seed, permutation_of, spawn, substream


class TestSpawn:
    def test_same_seed_same_stream(self):
        assert spawn(42).random() == spawn(42).random()

    def test_different_seeds_differ(self):
        assert spawn(1).random() != spawn(2).random()

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn(-1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a") == derive_seed(7, "a")

    def test_label_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_fits_in_63_bits(self):
        for label in ("x", "y", "a-very-long-label-with-unicode-ü"):
            assert 0 <= derive_seed(123456789, label) < 2**63

    def test_no_collision_over_many_labels(self):
        seeds = {derive_seed(0, f"label-{i}") for i in range(10_000)}
        assert len(seeds) == 10_000

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(-5, "a")


class TestSubstream:
    def test_substreams_are_independent(self):
        a = substream(99, "alpha")
        b = substream(99, "beta")
        # Streams from different labels should not be identical.
        assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]

    def test_substream_reproducible(self):
        xs = substream(5, "pool").random(3).tolist()
        ys = substream(5, "pool").random(3).tolist()
        assert xs == ys


class TestPermutationOf:
    def test_is_a_permutation(self):
        perm = permutation_of(3, "seq", 20)
        assert sorted(perm) == list(range(20))

    def test_deterministic(self):
        assert permutation_of(3, "seq", 10) == permutation_of(3, "seq", 10)

    def test_label_changes_order(self):
        assert permutation_of(3, "s1", 30) != permutation_of(3, "s2", 30)

    def test_empty(self):
        assert permutation_of(1, "x", 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            permutation_of(1, "x", -1)
