"""Tests for repro.util.stats against closed forms and scipy."""

from __future__ import annotations

import math

import pytest
from scipy import stats as sps

from repro.util.stats import (
    binomial_pmf,
    binomial_tail,
    chernoff_majority_lower_bound,
    clamp_probability,
    harmonic_number,
    logsumexp,
    majority_probability,
    majority_threshold,
    mean,
    softmax_from_logs,
)


class TestClampProbability:
    def test_inside_range_untouched(self):
        assert clamp_probability(0.5) == 0.5

    def test_clamps_zero_and_one(self):
        assert 0.0 < clamp_probability(0.0) < 1e-6
        assert 1.0 - 1e-6 < clamp_probability(1.0) < 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            clamp_probability(1.5)
        with pytest.raises(ValueError):
            clamp_probability(-0.2)


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_generator_input(self):
        assert mean(x for x in (2.0, 4.0)) == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestMajorityThreshold:
    @pytest.mark.parametrize("n,expected", [(1, 1), (3, 2), (5, 3), (29, 15)])
    def test_odd(self, n, expected):
        assert majority_threshold(n) == expected

    def test_even_is_strict_majority(self):
        assert majority_threshold(4) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            majority_threshold(0)


class TestBinomialPmf:
    @pytest.mark.parametrize("n,k,p", [(5, 2, 0.3), (10, 0, 0.7), (10, 10, 0.7), (1, 1, 0.5)])
    def test_matches_scipy(self, n, k, p):
        assert binomial_pmf(n, k, p) == pytest.approx(sps.binom.pmf(k, n, p), rel=1e-9)

    def test_out_of_support_is_zero(self):
        assert binomial_pmf(5, 6, 0.5) == 0.0
        assert binomial_pmf(5, -1, 0.5) == 0.0

    def test_sums_to_one(self):
        total = sum(binomial_pmf(12, k, 0.37) for k in range(13))
        assert total == pytest.approx(1.0, abs=1e-12)


class TestBinomialTail:
    @pytest.mark.parametrize(
        "n,k,p",
        [(5, 3, 0.6), (29, 15, 0.7), (101, 51, 0.55), (9, 5, 0.9), (3, 2, 0.51)],
    )
    def test_matches_scipy_sf(self, n, k, p):
        expected = sps.binom.sf(k - 1, n, p)
        assert binomial_tail(n, k, p) == pytest.approx(expected, rel=1e-9)

    def test_k_zero_is_one(self):
        assert binomial_tail(10, 0, 0.3) == 1.0

    def test_k_above_n_is_zero(self):
        assert binomial_tail(10, 11, 0.3) == 0.0

    def test_large_n_stable(self):
        # Algorithm-3 recurrence must not over/underflow at n = 2001.
        value = binomial_tail(2001, 1001, 0.6)
        assert 0.999 < value <= 1.0


class TestMajorityProbability:
    def test_single_worker_is_accuracy(self):
        assert majority_probability(1, 0.73) == pytest.approx(0.73)

    def test_condorcet_monotone_in_n(self):
        values = [majority_probability(n, 0.7) for n in range(1, 40, 2)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_condorcet_decreasing_below_half(self):
        values = [majority_probability(n, 0.4) for n in range(1, 40, 2)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_paper_magnitude_at_29_workers(self):
        # Paper Figure 7: ~0.99 at 29 workers with mu ≈ 0.7.
        assert majority_probability(29, 0.7) > 0.98


class TestChernoffBound:
    def test_is_a_lower_bound(self):
        for n in (1, 5, 15, 51):
            for mu in (0.55, 0.65, 0.8, 0.95):
                assert chernoff_majority_lower_bound(n, mu) <= majority_probability(
                    n, mu
                ) + 1e-12

    def test_vacuous_at_half(self):
        assert chernoff_majority_lower_bound(11, 0.5) == 0.0
        assert chernoff_majority_lower_bound(11, 0.3) == 0.0

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            chernoff_majority_lower_bound(0, 0.7)


class TestLogsumexp:
    def test_matches_direct_small_values(self):
        xs = [0.1, 0.5, -0.3]
        assert logsumexp(xs) == pytest.approx(math.log(sum(math.exp(x) for x in xs)))

    def test_handles_large_values(self):
        assert logsumexp([1000.0, 1000.0]) == pytest.approx(1000.0 + math.log(2))

    def test_all_minus_inf(self):
        assert logsumexp([float("-inf"), float("-inf")]) == float("-inf")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            logsumexp([])


class TestSoftmaxFromLogs:
    def test_sums_to_one(self):
        probs = softmax_from_logs([0.0, 1.0, 2.0])
        assert sum(probs) == pytest.approx(1.0)

    def test_order_preserved(self):
        probs = softmax_from_logs([0.0, 3.0, 1.0])
        assert probs[1] > probs[2] > probs[0]

    def test_overflow_safe(self):
        probs = softmax_from_logs([800.0, 805.0])
        assert probs[1] == pytest.approx(1.0 / (1.0 + math.exp(-5.0)))


class TestHarmonicNumber:
    def test_known_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(4) == pytest.approx(1.0 + 0.5 + 1 / 3 + 0.25)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)
