"""Tests for repro.util.tables rendering."""

from __future__ import annotations

import pytest

from repro.util.tables import format_percent, format_series, format_table, render_rows


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.153) == "15.3%"

    def test_digits(self):
        assert format_percent(0.5, digits=0) == "50%"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "n"], [["short", 1], ["a-longer-name", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        # The second column starts right after the widest first-column cell
        # plus the two-space separator, in every row.
        offset = len("a-longer-name") + 2
        assert lines[0][offset] == "n"
        assert lines[2][offset] == "1"
        assert lines[3][offset:] == "22"

    def test_float_formatting(self):
        out = format_table(["x"], [[0.123456789]])
        assert "0.1235" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="row width"):
            format_table(["a", "b"], [[1]])


class TestRenderRows:
    def test_empty(self):
        assert render_rows([]) == "(no rows)"

    def test_column_order_follows_first_row(self):
        out = render_rows([{"b": 1, "a": 2}])
        header = out.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_key_renders_empty(self):
        out = render_rows([{"a": 1, "b": 2}, {"a": 3}])
        assert out  # no crash; missing cell rendered blank


class TestFormatSeries:
    def test_roundtrip(self):
        out = format_series("acc", [1, 3], [0.5, 0.75], x_label="n")
        assert "series: acc" in out
        assert "0.7500" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            format_series("s", [1, 2], [1.0])
