"""Tests for the quality-management worker screen (§6-inspired extension)."""

from __future__ import annotations

import pytest

from repro.amt.hit import Question
from repro.amt.market import SimulatedMarket
from repro.amt.pool import PoolConfig, WorkerPool
from repro.engine.engine import CrowdsourcingEngine, EngineConfig


def _gold(count: int) -> list[Question]:
    options = ("pos", "neu", "neg")
    return [
        Question(question_id=f"g{i}", options=options, truth=options[i % 3])
        for i in range(count)
    ]


def _questions(count: int) -> list[Question]:
    options = ("pos", "neu", "neg")
    return [
        Question(question_id=f"q{i}", options=options, truth=options[i % 3])
        for i in range(count)
    ]


def _spammy_engine(seed: int, flag_threshold: float | None) -> CrowdsourcingEngine:
    pool = WorkerPool.from_config(
        PoolConfig(size=200, spammer_fraction=0.35), seed=seed
    )
    market = SimulatedMarket(pool, seed=seed)
    config = EngineConfig(
        flag_threshold=flag_threshold,
        flag_min_observations=10,
        estimator_smoothing=0.0,
    )
    return CrowdsourcingEngine(market, seed=seed, config=config)


class TestConfigValidation:
    def test_threshold_range(self):
        with pytest.raises(ValueError, match="flag threshold"):
            EngineConfig(flag_threshold=1.2)

    def test_min_observations(self):
        with pytest.raises(ValueError, match="flag_min_observations"):
            EngineConfig(flag_min_observations=0)

    def test_disabled_by_default(self):
        assert EngineConfig().flag_threshold is None


class TestFlagging:
    def test_spammers_get_flagged(self):
        engine = _spammy_engine(seed=11, flag_threshold=0.45)
        engine.calibrate(_gold(15), workers_per_hit=40, hits=3)
        flagged = set(engine.flagged_workers())
        assert flagged  # with 35% spammers some must be caught
        # Flagged workers' estimated accuracy really is below threshold.
        for worker in flagged:
            assert engine.estimator.accuracy(worker) < 0.45
            assert engine.estimator.observations(worker) >= 10

    def test_no_flagging_without_threshold(self):
        engine = _spammy_engine(seed=11, flag_threshold=None)
        engine.calibrate(_gold(15), workers_per_hit=40, hits=3)
        assert engine.flagged_workers() == []

    def test_insufficient_evidence_never_flags(self):
        engine = _spammy_engine(seed=12, flag_threshold=0.45)
        # One short calibration HIT: nobody reaches 10 gold observations.
        engine.calibrate(_gold(5), workers_per_hit=20, hits=1)
        assert engine.flagged_workers() == []

    def test_flagged_votes_excluded_from_observations(self):
        engine = _spammy_engine(seed=13, flag_threshold=0.45)
        engine.calibrate(_gold(15), workers_per_hit=40, hits=3)
        flagged = set(engine.flagged_workers())
        assert flagged
        result = engine.run_batch(
            _questions(10), 0.85, gold_pool=_gold(10), worker_count=9
        )
        for record in result.records:
            voters = {wa.worker_id for wa in record.observation}
            assert not voters & flagged

    def test_screening_does_not_hurt_accuracy(self):
        def run(threshold):
            engine = _spammy_engine(seed=14, flag_threshold=threshold)
            engine.calibrate(_gold(15), workers_per_hit=40, hits=3)
            return engine.run_batch(
                _questions(40), 0.85, gold_pool=_gold(10), worker_count=9
            ).accuracy

        assert run(0.45) >= run(None) - 0.05
